#include "multishot/node.hpp"

#include <algorithm>
#include <functional>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "storage/durable_chain.hpp"

namespace tbft::multishot {

namespace {
std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Hash-indexed view of a block's frames for mempool reconciliation: sorted
/// (fnv1a64, frame) pairs, probed per entry in O(log frames) with an exact
/// byte comparison only on hash hits.
struct FrameIndex {
  explicit FrameIndex(const std::vector<std::span<const std::uint8_t>>& frames) {
    keyed.reserve(frames.size());
    for (const auto& f : frames) keyed.emplace_back(fnv1a64(f), f);
    std::sort(keyed.begin(), keyed.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  [[nodiscard]] bool contains(std::uint64_t hash, std::span<const std::uint8_t> tx) const {
    auto it = std::lower_bound(keyed.begin(), keyed.end(), hash,
                               [](const auto& e, std::uint64_t h) { return e.first < h; });
    for (; it != keyed.end() && it->first == hash; ++it) {
      const auto& f = it->second;
      if (f.size() == tx.size() && std::equal(f.begin(), f.end(), tx.begin())) return true;
    }
    return false;
  }

  std::vector<std::pair<std::uint64_t, std::span<const std::uint8_t>>> keyed;
};
}  // namespace

std::vector<std::uint8_t> encode_ms(const MsMessage& m) {
  serde::Writer w;
  std::visit([&w](const auto& msg) { msg.encode(w); }, m);
  return w.take();
}

Payload encode_ms_payload(const MsMessage& m, serde::Writer& scratch, bool cache_decoded) {
  return encode_to_payload(m, scratch, cache_decoded);
}

std::optional<MsMessage> decode_ms(std::span<const std::uint8_t> payload) {
  serde::Reader r(payload);
  const auto tag = r.u8();
  if (!r.ok()) return std::nullopt;
  MsMessage out;
  switch (static_cast<MsType>(tag)) {
    case MsType::Proposal: out = MsProposal::decode(r); break;
    case MsType::Vote: out = MsVote::decode(r); break;
    case MsType::Suggest: out = MsSuggest::decode(r); break;
    case MsType::Proof: out = MsProof::decode(r); break;
    case MsType::ViewChange: out = MsViewChange::decode(r); break;
    case MsType::ChainInfo: out = MsChainInfo::decode(r); break;
    case MsType::SyncRequest: out = MsSyncRequest::decode(r); break;
    case MsType::SyncChunk: out = MsSyncChunk::decode(r); break;
    case MsType::ForwardTx: out = MsForwardTx::decode(r); break;
    case MsType::CheckpointRequest: out = MsCheckpointRequest::decode(r); break;
    case MsType::CheckpointChunk: out = MsCheckpointChunk::decode(r); break;
    case MsType::BlockRequest: out = MsBlockRequest::decode(r); break;
    case MsType::BlockReply: out = MsBlockReply::decode(r); break;
    default: return std::nullopt;
  }
  if (!r.done()) return std::nullopt;
  return out;
}

MultishotNode::MultishotNode(MultishotConfig cfg)
    : cfg_(cfg),
      qp_(cfg.quorum_params()),
      chain_(cfg.finalized_tail, cfg.commit_epoch_slots),
      mempool_(cfg.mempool_capacity, cfg.mempool_policy) {
  // Both finalization paths (depth-4 rule and claim adoption) notify through
  // this one hook, before the block can be compacted out of the tail.
  chain_.set_on_finalized([this](const Block& b) { note_finalized(b); });
}

void MultishotNode::on_start() {
  // A chain restored from durable state resumes at its recovered frontier,
  // not slot 1.
  const Slot first = chain_.first_unfinalized();
  start_slot(first);
  try_propose(first);
}

bool MultishotNode::submit_tx(std::vector<std::uint8_t> tx) {
  auto& metrics = ctx().metrics();
  // Same dedup the relay path runs, hashed once: a client retrying a
  // request this node already committed (commit index), already holds
  // pending (pool probe), or already accepted from a relay (recent set)
  // gets success without a second pool entry -- re-admitting any of them
  // could commit the same bytes twice and break exactly-once.
  std::uint64_t h = 0;
  if (!tx.empty()) {
    h = fnv1a64(tx);
    if (chain_.commit_slot(tx, h) != 0 || mempool_.contains(h, tx) ||
        forward_seen_.contains(h)) {
      metrics.counter("multishot.submit.deduped").add();
      return true;
    }
  }
  const auto verdict = mempool_.push(std::move(tx), cfg_.max_batch_bytes, h);
  switch (verdict) {
    case BoundedMempool::Admit::kRejected:
      metrics.counter("multishot.mempool.rejected").add();
      break;
    case BoundedMempool::Admit::kDroppedOldest:
      metrics.counter("multishot.mempool.dropped_oldest").add();
      [[fallthrough]];
    case BoundedMempool::Admit::kAdmitted:
      metrics.counter("multishot.mempool.admitted").add();
      break;
  }
  metrics.histogram("multishot.mempool.depth").record(static_cast<double>(mempool_.size()));
  if (verdict == BoundedMempool::Admit::kRejected) return false;

  // Single-hop relay: when another node leads the proposal frontier, hand
  // the request to it (the entry just pushed is entries().back() on every
  // admission path).
  forward_if_foreign_leader(mempool_.entries().back());
  after_admission();
  return true;
}

void MultishotNode::forward_if_foreign_leader(BoundedMempool::Entry& e) {
  if (!cfg_.forward_to_leader) return;
  // Relay both into a suppressed (parked) chain -- resuming an idle chain in
  // ~1 delta instead of the ~9 delta view-change rotation -- and under load,
  // where the frontier leader batches the request into its next proposal
  // instead of the bytes waiting up to n * pipeline_depth slots for the
  // submitter's own stripe. The loaded path was once disabled over a
  // double-commit race between the two pools' inclusion; that window is
  // closed by the hold below plus the commit-index and pending-candidate
  // probes in build_batch (verified by the ForwardSpec checker).
  if (cfg_.max_slots != 0) return;
  const Slot frontier = proposal_frontier();
  const NodeId leader = cfg_.leader_of(frontier, view_of(frontier));
  if (leader == ctx().id()) return;
  // The relay owns the request for one retry period: holding the local
  // fallback copy out of our own batches keeps the same bytes from racing
  // into two different slots. If the leader crashed or the relay was lost,
  // the hold expires and the local copy resumes through the view-change
  // path; an idle chain commits the relayed copy orders of magnitude
  // earlier, and a late relayed duplicate is caught by the receiver's
  // commit-index check.
  e.hold_until = ctx().now() + forward_retry();
  ctx().metrics().counter("multishot.forward.sent").add();
  send_ms(leader, MsForwardTx{e.tx});
}

void MultishotNode::after_admission() {
  // A leader deferring a fresh proposal for transactions (batch_timeout) can
  // propose now.
  if (batch_timers_armed_ > 0) {
    slot_scratch_.clear();
    slots_.for_each([this](Slot s, SlotState& st) {
      if (st.batch_timer != 0) slot_scratch_.push_back(s);
    });
    for (const Slot s : slot_scratch_) {
      if (SlotState* st = slots_.find(s); st != nullptr) cancel_batch_timer(*st);
    }
    for (const Slot s : slot_scratch_) try_propose(s);
  }
  // Idle-chain resume: a quiesced (or proposal-suppressed) network re-arms
  // at the proposal frontier and, if this node leads it, proposes the new
  // transaction right away. Gated on suppression having actually happened,
  // so the loaded hot path never pays the window scan.
  if (cfg_.max_slots == 0 && idle_suppressed_) {
    idle_suppressed_ = false;
    const Slot frontier = proposal_frontier();
    wake_slot(frontier);
    try_propose(frontier);
  }
}

View MultishotNode::view_of(Slot s) const {
  const SlotState* st = slots_.find(s);
  return st == nullptr ? 0 : st->view;
}

bool MultishotNode::tx_finalized(std::span<const std::uint8_t> tx) const {
  return chain_.commit_slot(tx) != 0;
}

MultishotNode::SlotState* MultishotNode::slot_state(Slot s, bool create) {
  if (s < 1 || chain_.is_finalized(s)) return nullptr;
  if (s > chain_.first_unfinalized() + ChainStore::kWindow) return nullptr;
  if (!create) return slots_.find(s);
  SlotState* st = slots_.ensure(s);
  if (st != nullptr && st->vc_highest.size() != cfg_.n) st->size_for(cfg_.n);
  return st;
}

void MultishotNode::start_slot(Slot s) {
  SlotState* st = slot_state(s, true);
  if (st == nullptr || st->started) return;
  st->started = true;
  arm_timer(s);
}

void MultishotNode::arm_timer(Slot s) {
  SlotState* st = slot_state(s, false);
  if (st == nullptr) return;
  if (st->timer != 0) ctx().cancel_timer(st->timer);
  st->timer = ctx().set_timer(cfg_.view_timeout());
}

void MultishotNode::wake_slot(Slot s) {
  SlotState* st = slot_state(s, true);
  if (st == nullptr) return;
  if (!st->started) {
    st->started = true;
    arm_timer(s);
  } else if (st->timer == 0) {
    arm_timer(s);
  }
}

bool MultishotNode::idle_quiescent() const {
  if (cfg_.max_slots != 0) return false;
  if (!mempool_.empty()) return false;
  // Idle means no *work* is pending -- the pipeline's own filler momentum
  // (un-notarized filler proposals ahead of the suffix) does not count, or
  // filler would self-sustain forever. Work is: a transaction-bearing (or
  // content-unknown) proposal/notarization at any unfinalized slot, or
  // view-change traffic newer than a slot's current view (recovery in
  // flight). Finality depth for filler blocks is worthless, so a quiesced
  // network may leave a filler tail unfinalized; resumption finalizes it in
  // passing.
  bool quiet = true;
  slots_.for_each([&](Slot t, const SlotState& st) {
    if (!quiet || chain_.is_finalized(t)) return;
    if (st.highest_vc_sent > st.view) {
      quiet = false;
      return;
    }
    for (const View v : st.vc_highest) {
      if (v > st.view) {
        quiet = false;
        return;
      }
    }
    if (chain_.slot_has_pending_txs(t)) {
      quiet = false;
      return;
    }
    if (const auto* h = st.proposal_by_view.find(st.view);
        h != nullptr && chain_.candidate_has_txs(t, *h)) {
      quiet = false;
    }
  });
  return quiet;
}

MultishotNode::BatchDraft MultishotNode::build_batch(View view) {
  // Adaptive control law (DESIGN_PERF.md "Slot pipelining & adaptive
  // batching"): the effective caps start at the configured base and, under
  // backlog, grow toward the adaptive ceiling -- the backlog is spread
  // across this node's in-flight led slots (a deeper pipeline drains it over
  // more proposals), and the byte budget scales in proportion so the
  // transaction headroom is actually reachable. A pool at or below the base
  // cap keeps today's caps exactly.
  std::uint32_t cap_txs = cfg_.max_batch_txs;
  std::uint64_t cap_bytes = cfg_.max_batch_bytes;
  if (cfg_.adaptive_batch_txs > cfg_.max_batch_txs) {
    const std::uint64_t backlog = mempool_.available();
    if (backlog > cap_txs) {
      const std::uint64_t spread = std::max<std::uint32_t>(1, led_inflight());
      const std::uint64_t want = (backlog + spread - 1) / spread;
      if (want > cap_txs) {
        cap_txs = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(want, cfg_.adaptive_batch_txs));
        cap_bytes = std::max<std::uint64_t>(
            cap_bytes, static_cast<std::uint64_t>(cfg_.max_batch_bytes) * cap_txs /
                           std::max<std::uint32_t>(1, cfg_.max_batch_txs));
        ctx().metrics().histogram("multishot.batch.adaptive_cap")
            .record(static_cast<double>(cap_txs));
      }
    }
  }
  BatchDraft draft;
  serde::Writer w;
  w.varint(static_cast<std::uint64_t>(view));  // nonce: distinct across views
  const runtime::Time now = ctx().now();
  // Dedup probes, lazy and loop-invariant: any entry with a twin elsewhere
  // (a held fallback copy whose hold expired, or a relayed copy whose origin
  // kept the fallback) must prove its bytes are not already riding another
  // live slot before it may ride this one.
  std::optional<FrameIndex> pending_index;
  for (auto& e : mempool_.entries()) {
    if (e.inflight) continue;       // already in one of my outstanding proposals
    if (e.hold_until > now) continue;  // forwarded; the relay owns it for now
    if (e.hold_until != 0 || e.relayed) {
      // The twin may have committed in a block this node has not finalized
      // yet (reconciliation erases the entry only at its own finalization)
      // -- the O(1) index probe closes that re-commit window.
      if (chain_.commit_slot(e.tx, e.hash) != 0) continue;
      // The twin can also still be *in flight*: riding a pending proposal
      // that stalled behind faulty-leader view changes. Batching this copy
      // would put the same bytes in two live slots, so keep holding while
      // any pending candidate carries them (the slot's outcome settles the
      // copy either way).
      //
      // These probes are best-effort, not a proof: a twin can hide in a
      // notarized block whose content has not arrived here yet, and on slow
      // (WAN-shaped) links that is the *steady state* at propose time --
      // votes outrun the proposal broadcast, so a batch-time "window fully
      // known" guard starves batching outright. Exactly-once therefore
      // lives at the delivery layer (note_finalized filters frames already
      // committed at an earlier slot); the probes here just keep duplicate
      // *inclusion* rare so the chain does not carry dead bytes.
      if (!pending_index.has_value()) {
        pending_index.emplace(chain_.pending_candidate_frames());
      }
      if (pending_index->contains(e.hash, e.tx)) {
        e.hold_until = now + forward_retry();
        continue;
      }
    }
    if (draft.entries.size() >= cap_txs) break;
    const std::size_t frame = varint_size(e.tx.size()) + e.tx.size();
    if (!draft.entries.empty() && w.size() + frame > cap_bytes) break;
    w.bytes(e.tx);
    draft.entries.push_back(&e);
  }
  draft.payload = w.take();
  if (draft.payload.size() < cfg_.default_payload_bytes) {
    draft.payload.resize(cfg_.default_payload_bytes, 0);
  }
  return draft;
}

void MultishotNode::commit_batch(BatchDraft& draft, Slot s, std::size_t payload_bytes) {
  for (auto* e : draft.entries) mempool_.mark_inflight(*e, s);
  auto& metrics = ctx().metrics();
  metrics.histogram("multishot.batch.txs").record(static_cast<double>(draft.entries.size()));
  metrics.histogram("multishot.batch.bytes").record(static_cast<double>(payload_bytes));
}

bool MultishotNode::defer_for_batch(SlotState& st) {
  if (cfg_.batch_timeout <= 0 || st.batch_waited) return false;
  if (mempool_.available() > 0) {
    cancel_batch_timer(st);
    return false;
  }
  if (st.batch_timer == 0) {
    // Adaptive mode shortens the wait in proportion to pipeline occupancy:
    // with several led slots already draining the pool, holding a fresh slot
    // open for stragglers buys little amortization and costs latency.
    runtime::Duration wait = cfg_.batch_timeout;
    if (cfg_.adaptive_batch_txs > cfg_.max_batch_txs) {
      wait = std::max<runtime::Duration>(
          1, cfg_.batch_timeout / static_cast<runtime::Duration>(1 + led_inflight()));
    }
    st.batch_timer = ctx().set_timer(wait);
    ++batch_timers_armed_;
  }
  return true;
}

void MultishotNode::cancel_batch_timer(SlotState& st) {
  if (st.batch_timer == 0) return;
  ctx().cancel_timer(st.batch_timer);
  st.batch_timer = 0;
  TBFT_ASSERT(batch_timers_armed_ > 0);
  --batch_timers_armed_;
}

std::optional<std::uint64_t> MultishotNode::parent_for_proposal(Slot s) const {
  const Slot prev = s - 1;
  if (prev == 0) return kGenesisHash;
  // A finalized predecessor of an unfinalized slot is exactly the tip.
  if (chain_.is_finalized(prev)) return chain_.finalized_tip_hash();
  // A notarization of the previous slot is the convergent signal: build on
  // it whenever one exists (any view; value stability in try_propose keeps
  // re-proposals equal to notarizations, so this stays consistent across
  // view changes and across equivocation-split perceptions). Only in the
  // good-case pipelining window -- before the previous slot has notarized
  // at all -- build directly on the received proposal (Fig. 2 proposes on
  // *receipt* of the previous proposal).
  if (const auto n = chain_.notarized(prev)) return n->hash;
  if (const SlotState* pst = slots_.find(prev); pst != nullptr) {
    if (const auto* h = pst->proposal_by_view.find(pst->view)) return *h;
    // Stripe chaining (pipeline_depth > 1): our own just-proposed candidate
    // is a valid parent before its broadcast loops back into
    // proposal_by_view. Stale after a view change (self_view mismatch).
    if (cfg_.pipeline_depth > 1 && pst->self_view == pst->view &&
        pst->self_hash != 0) {
      return pst->self_hash;
    }
  }
  return std::nullopt;
}

void MultishotNode::try_propose(Slot s) {
  if (cfg_.max_slots != 0 && s > cfg_.max_slots) return;
  SlotState* st = slot_state(s, true);
  if (st == nullptr || st->proposed) return;
  if (cfg_.leader_of(s, st->view) != ctx().id()) return;

  const auto parent = parent_for_proposal(s);
  if (!parent) return;

  Block block;
  if (st->view == 0) {
    // Idle-chain suppression (unbounded chains): a filler block that no
    // pending work needs is never proposed -- submissions wake the frontier.
    if (idle_quiescent()) {
      idle_suppressed_ = true;
      ctx().metrics().counter("multishot.idle.skipped_proposals").add();
      return;
    }
    if (defer_for_batch(*st)) return;
    BatchDraft draft = build_batch(0);
    const std::size_t payload_bytes = draft.payload.size();
    block = Block{s, *parent, ctx().id(), std::move(draft.payload)};
    commit_batch(draft, s, payload_bytes);
  } else {
    // Rule 1 over this slot's suggest messages. The leader's "initial
    // value" is the slot's already-notarized block when one exists (value
    // stability: keeps notarizations from different views linked so the
    // depth-4 finality rule can complete across view changes even when a
    // crashed node leads one slot of the window in every view); a fresh
    // block otherwise.
    std::vector<core::SuggestFrom> suggests;
    for (NodeId p = 0; p < cfg_.n; ++p) {
      if (st->suggests[p] && st->suggests[p]->view == st->view) {
        suggests.push_back({p, st->suggests[p]->as_core()});
      }
    }
    std::optional<Block> preferred;
    BatchDraft draft;
    bool fresh = false;
    if (const auto nt = chain_.notarized(s)) {
      if (const Block* nb = chain_.find_block(s, nt->hash);
          nb != nullptr && nb->parent_hash == *parent) {
        preferred = *nb;
      }
    }
    if (!preferred) {
      draft = build_batch(st->view);
      preferred = Block{s, *parent, ctx().id(), std::move(draft.payload)};
      fresh = true;
    }
    const auto val = core::leader_find_safe_value(qp_, st->view, preferred->value(), suggests);
    if (!val) return;
    if (val->id == preferred->hash()) {
      // Mark the batch only when the fresh block is actually proposed; a
      // Rule-1-forced value discards the draft at no cost.
      if (fresh) commit_batch(draft, s, preferred->payload.size());
      block = std::move(*preferred);
    } else {
      // Rule 1 forces a previously proposed block: re-propose it.
      const Block* existing = chain_.find_block(s, val->id);
      if (existing == nullptr) {
        // Content unknown: ask the network for the bytes instead of waiting
        // for a delivery that may never come (the voters that held them can
        // have crash-lost the unfinalized block since).
        request_block_content(s, val->id);
        return;
      }
      block = *existing;
    }
  }

  st->proposed = true;
  st->self_hash = block.hash();
  st->self_view = st->view;
  chain_.add_block(block);
  // The proposal is the leader's implicit vote for its own slot (paper
  // §6.1): record vote-1 locally; the broadcast is counted by receivers.
  if (st->voted.try_emplace(st->view, block.hash())) {
    const auto& high = st->record.highest(1);
    if (!high.present() || st->view > high.view) {
      st->record.record(1, st->view, block.value());
    }
  }
  do_propose(s, st->view, block);
  if (cfg_.pipeline_depth > 1) try_chain_ahead(s);
}

void MultishotNode::try_chain_ahead(Slot s) {
  // Drive the rest of this stripe without waiting for the broadcast of slot
  // s to loop back: up to pipeline_depth consecutive led slots in flight
  // before the earliest finalizes, each chaining on the previous candidate.
  // Only fresh view-0 proposals chain (views > 0 re-propose per slot through
  // Rule 1), and only while real work is pending -- filler never rides the
  // pipeline ahead of the frontier. Recursion through try_propose walks to
  // the stripe boundary and stops (the next stripe has a different leader).
  const Slot t = s + 1;
  if (cfg_.max_slots != 0 && t > cfg_.max_slots) return;
  if (mempool_.available() == 0) return;
  if (cfg_.leader_of(t, 0) != ctx().id()) return;  // stripe boundary
  SlotState* st = slot_state(t, true);
  if (st == nullptr || st->view != 0 || st->proposed) return;
  start_slot(t);
  try_propose(t);
}

std::uint32_t MultishotNode::led_inflight() const {
  std::uint32_t count = 0;
  slots_.for_each([&](Slot s, const SlotState& st) {
    if (st.proposed && !chain_.is_finalized(s) &&
        cfg_.leader_of(s, st.view) == ctx().id()) {
      ++count;
    }
  });
  return count;
}

void MultishotNode::do_propose(Slot s, View v, const Block& block) {
  broadcast_ms(MsProposal{s, v, block});
}

void MultishotNode::try_vote(Slot s) {
  SlotState* st = slot_state(s, false);
  if (st == nullptr) return;
  if (st->voted.find(st->view) != nullptr) return;
  const auto* ph = st->proposal_by_view.find(st->view);
  if (ph == nullptr) return;
  const std::uint64_t h = *ph;
  const Block* b = chain_.find_block(s, h);
  if (b == nullptr) return;

  // Chaining condition (§6.1): the parent must be notarized and the block
  // must extend it.
  const auto parent = chain_.required_parent(s);
  if (!parent || *parent != b->parent_hash) return;

  // Safety condition: Rule 3 in views > 0 (all values safe in view 0).
  if (st->view > 0) {
    std::vector<core::ProofFrom> proofs;
    for (NodeId p = 0; p < cfg_.n; ++p) {
      if (st->proofs[p] && st->proofs[p]->view == st->view) {
        proofs.push_back({p, st->proofs[p]->as_core()});
      }
    }
    if (!core::proposal_is_safe(qp_, st->view, Value{h}, proofs)) return;
  }

  st->voted.try_emplace(st->view, h);
  record_vote_effects(s, st->view, *b);
  broadcast_ms(MsVote{s, st->view, h});
}

void MultishotNode::record_vote_effects(Slot s, View v, const Block& head) {
  // A head vote for slot s is vote-1 for s and implicitly vote-k for slot
  // s-k+1 along the parent chain (Fig. 2); phases are preserved in local
  // memory for future suggest/proof messages.
  const Block* b = &head;
  for (int phase = 1; phase <= 4; ++phase) {
    const Slot target = s - static_cast<Slot>(phase - 1);
    if (target < 1 || s < static_cast<Slot>(phase - 1)) break;
    if (SlotState* ts = slot_state(target, false); ts != nullptr) {
      const auto& high = ts->record.highest(phase);
      if (!high.present() || v > high.view) {
        ts->record.record(phase, v, b->value());
      }
    }
    if (phase == 4 || target == 1) break;
    const Slot parent_slot = target - 1;
    const Block* pb = chain_.find_block(parent_slot, b->parent_hash);
    if (pb == nullptr) {
      // A compacted ancestor (block_at == nullptr) is content-unknown too.
      const Block* fb = chain_.block_at(parent_slot);
      if (fb != nullptr && fb->hash() == b->parent_hash) {
        pb = fb;
      } else {
        break;  // ancestor content unknown; skip deeper phases
      }
    }
    b = pb;
  }
}

void MultishotNode::on_notarized(Slot s) {
  if (record_timeline_) notarized_at_.try_emplace(s, ctx().now());
  heal_notarization_seams();
  finalize_progress();
  // A quorum of votes can notarize a hash whose block never reached this
  // node: chase the content right away -- finalization (and building the
  // next slot on a stored parent) needs the bytes.
  if (const auto nt = chain_.notarized(s);
      nt && !chain_.is_finalized(s) && chain_.find_block(s, nt->hash) == nullptr) {
    request_block_content(s, nt->hash);
  }
  try_vote(s);
  try_vote(s + 1);
  try_propose(s + 1);
}

// An equivocating leader can split one view's votes so that slot s
// notarizes twin A while slot s+1 notarizes a block built on twin B: every
// per-slot notarization is quorum-backed, but the cross-slot parent links
// are incoherent and the depth-4 finalization rule can never fire again --
// Rule 1 re-locks each slot on its own notarized value, so no amount of
// view changes repairs the seam (chaos seeds 63/188/297). The repair is
// the pipelined-vote inference: the quorum notarizing the child recorded
// phase votes for the child's parent at the child's view, so adopt that
// parent as the slot's notarization (and fetch its bytes if they never
// reached us). The inference holds in BOTH view orders: when the child's
// notarization is OLDER than a conflicting parent re-notarization (the
// pipelined child notarized first, then an equivocated view change
// re-notarized the parent differently -- chaos seed 83 at shards=4), the
// child still wins, because Rule 1 pins the child's value forever and the
// chain can only ever extend through the parent it cites; the newer parent
// notarization is a dead branch no honest quorum will build on. The
// adoption is recorded at the max of both views so retransmitted votes for
// the dead branch cannot flip the slot back before the suffix finalizes.
// Walk top-down so a cascade of seams heals in one pass.
void MultishotNode::heal_notarization_seams() {
  const Slot base = chain_.first_unfinalized();
  Slot top = base;
  while (chain_.notarized(top + 1).has_value()) ++top;  // bounded by the window
  for (Slot s = top; s > base; --s) {
    const auto child = chain_.notarized(s);
    const auto cur = chain_.notarized(s - 1);
    if (!child) continue;
    const Block* cb = chain_.find_block(s, child->hash);
    if (cb == nullptr) continue;  // content recovery will re-trigger the pass
    if (cur && cur->hash == cb->parent_hash) continue;  // coherent link
    const View adopt_view = std::max(child->view, cur ? cur->view : 0);
    if (chain_.adopt_parent_notarization(s - 1, adopt_view, cb->parent_hash)) {
      ctx().metrics().counter("multishot.seam.healed").add();
      if (chain_.find_block(s - 1, cb->parent_hash) == nullptr) {
        request_block_content(s - 1, cb->parent_hash);
      }
    }
  }
}

void MultishotNode::finalize_progress() {
  // note_finalized runs per block through the ChainStore hook.
  if (chain_.try_finalize() > 0) prune_slots();
}

void MultishotNode::note_finalized(const Block& b) {
  // Durability FIRST: the WAL record (and any due checkpoint) must be on
  // its way to disk before the commit is published or acknowledged -- a
  // crash right after the ack must recover the block.
  if (durable_ != nullptr) durable_->append(b, chain_.finalized());
  // Exactly-once DELIVERY over at-least-once inclusion: forwarding keeps a
  // fallback copy of every relayed request, and under sustained view-change
  // turbulence a fallback can be re-batched while the committing proposal
  // is still in flight (the batch-time probes cannot see an unreceived
  // block). The chain then carries the bytes twice, but delivery filters
  // any frame already committed at an earlier slot -- deterministically,
  // since every node filters the same chain prefix against the same commit
  // index. The common path (no duplicate) publishes the payload untouched.
  std::optional<Block> dedup;
  for (const auto f : payload_frames(b.payload)) {
    if (!chain_.committed_before(f, fnv1a64(f), b.slot)) continue;
    ctx().metrics().counter("multishot.delivery.filtered_dup").add();
    serde::Reader r(b.payload);
    serde::Writer w;
    w.varint(r.varint());  // view nonce survives verbatim
    for (const auto keep : payload_frames(b.payload)) {
      if (!chain_.committed_before(keep, fnv1a64(keep), b.slot)) w.bytes(keep);
    }
    auto filtered = w.take();
    filtered.resize(b.payload.size(), 0);  // zero padding parses as filler
    dedup = Block{b.slot, b.parent_hash, b.proposer, std::move(filtered)};
    break;
  }
  const Block& delivered = dedup ? *dedup : b;
  ctx().publish_commit(b.slot, b.value(), delivered.payload);
  // Mempool reconciliation against the winning block: transactions that made
  // it into the chain leave the pool; my inflight transactions attributed to
  // this (or an earlier) slot whose proposal lost/aborted become available
  // again -- the slot's outcome is now settled, so this cannot double-include.
  const FrameIndex index(payload_frames(b.payload));
  auto& entries = mempool_.entries();
  for (auto it = entries.begin(); it != entries.end();) {
    if (index.contains(it->hash, it->tx)) {
      it = mempool_.erase(it);
      continue;
    }
    if (it->inflight && it->slot <= b.slot) mempool_.release(*it);
    ++it;
  }
  if (commit_hook_) commit_hook_(delivered, ctx().now());
}

void MultishotNode::prune_slots() {
  const Slot first = chain_.first_unfinalized();
  slots_.advance_base(first, [this](Slot, SlotState& st) {
    if (st.timer != 0) {
      ctx().cancel_timer(st.timer);
      st.timer = 0;
    }
    cancel_batch_timer(st);
  });
  chain_claims_.advance_base(first);
}

void MultishotNode::on_message(NodeId from, const Payload& payload) {
  // Traffic from non-members (e.g. client actors with ids >= n) is ignored:
  // per-sender state below is sized for the n protocol participants.
  if (from >= cfg_.n) return;
  // Decode-once fast path for broadcasts (cache attached by the encoder of
  // these exact bytes); point-to-point payloads take the total decode below.
  if (const MsMessage* cached = payload.cached<MsMessage>()) {
    std::visit([this, from](const auto& m) { handle(from, m); }, *cached);
    return;
  }
  const auto msg = decode_ms(payload.bytes());
  if (!msg) {
    ctx().metrics().counter("multishot.malformed").add();
    return;
  }
  std::visit([this, from](const auto& m) { handle(from, m); }, *msg);
}

void MultishotNode::handle(NodeId from, const MsProposal& m) {
  if (from != cfg_.leader_of(m.slot, m.view)) return;
  SlotState* st = slot_state(m.slot, true);
  if (st == nullptr) return;
  // First proposal per view wins -- checked BEFORE the candidate store, so
  // an equivocating leader cannot flood the bounded per-slot storage. A few
  // *alternate* blocks per slot are still stored: if another variant wins
  // notarization elsewhere, this node holds its content and finalizes
  // without a recovery round. Beyond the per-slot bound (and for future-
  // view spam churning first-per-view slots), the view-change /
  // content-unknown recovery paths take over -- a bounded liveness delay,
  // never a safety issue (all state is content-addressed).
  if (const auto* recorded = st->proposal_by_view.find(m.view); recorded != nullptr) {
    if (*recorded != m.block.hash() && st->extra_candidates < kMaxExtraCandidatesPerSlot &&
        chain_.add_block(m.block)) {
      ++st->extra_candidates;
    }
    return;
  }
  // Record the view's proposal first: a view refused at the tracked-view
  // bound must leave no trace in the bounded candidate store either, or
  // stale-view spam could churn its displacement rotation.
  const std::uint64_t h = m.block.hash();
  if (!st->proposal_by_view.try_emplace(m.view, h)) return;  // at the view bound
  if (!chain_.add_block(m.block)) return;  // window race: mapping alone is harmless
  if (record_timeline_) first_proposal_at_.try_emplace(m.slot, ctx().now());
  // Proposal activity revives a dormant (idle-suppressed) slot.
  if (st->started && st->timer == 0) arm_timer(m.slot);

  // Implicit leader vote (paper §6.1).
  NodeBitmap& voters = st->votes.voters(m.view, h, cfg_.n);
  voters.insert(from);
  if (qp_.is_quorum(voters.count()) && chain_.notarize(m.slot, m.view, h)) {
    on_notarized(m.slot);
  }

  if (m.view >= st->view) {
    // Receiving the proposal for slot s starts slot s+1 (§6.2) and lets the
    // next leader pipeline its own proposal (Fig. 2).
    start_slot(m.slot + 1);
    try_vote(m.slot);
    try_propose(m.slot + 1);
  }
}

void MultishotNode::handle(NodeId from, const MsVote& m) {
  SlotState* st = slot_state(m.slot, true);
  if (st == nullptr) return;
  // Vote traffic revives a dormant slot just like proposals do: a quorum of
  // votes can complete a content-unknown notarization this node must then
  // chase (view change -> ChainInfo), which needs a live timer.
  if (st->started && st->timer == 0) arm_timer(m.slot);
  NodeBitmap& voters = st->votes.voters(m.view, m.block_hash, cfg_.n);
  voters.insert(from);
  if (qp_.is_quorum(voters.count()) && chain_.notarize(m.slot, m.view, m.block_hash)) {
    on_notarized(m.slot);
  }
}

void MultishotNode::handle(NodeId from, const MsSuggest& m) {
  if (cfg_.leader_of(m.slot, m.view) != ctx().id()) return;
  SlotState* st = slot_state(m.slot, true);
  if (st == nullptr) return;
  auto& slot_msg = st->suggests[from];
  if (!slot_msg || m.view > slot_msg->view) slot_msg = m;
  try_propose(m.slot);
}

void MultishotNode::handle(NodeId from, const MsProof& m) {
  SlotState* st = slot_state(m.slot, true);
  if (st == nullptr) return;
  auto& slot_msg = st->proofs[from];
  if (!slot_msg || m.view > slot_msg->view) slot_msg = m;
  try_vote(m.slot);
}

void MultishotNode::handle(NodeId from, const MsViewChange& m) {
  if (chain_.is_finalized(m.slot)) {
    // Catch-up help, demoted to frontier discovery: a short resident suffix
    // plus our frontier. Gaps wider than kMaxBlocks trigger the requester's
    // range sync against the advertised frontier.
    if (from != ctx().id()) send_ms(from, chain_info_for(m.slot));
    return;
  }
  SlotState* st = slot_state(m.slot, true);
  if (st == nullptr) return;
  if (m.view <= st->vc_highest[from]) return;
  st->vc_highest[from] = m.view;
  // A peer asking for a view change revives a dormant slot: this node must
  // be able to time out and echo for the quorum to form.
  if (st->started && st->timer == 0) arm_timer(m.slot);

  auto kth_highest = [this, st](std::size_t k) {
    view_scratch_.assign(st->vc_highest.begin(), st->vc_highest.end());
    std::sort(view_scratch_.begin(), view_scratch_.end(), std::greater<>());
    return view_scratch_[k - 1];
  };

  const View echo_target = kth_highest(qp_.blocking_size());
  if (echo_target > st->highest_vc_sent && echo_target > st->view) {
    st->highest_vc_sent = echo_target;
    ctx().metrics().counter("multishot.viewchange.sent").add();
    broadcast_ms(MsViewChange{m.slot, echo_target});
  }
  const View enter_target = kth_highest(qp_.quorum_size());
  if (enter_target > st->view) {
    change_view(m.slot, enter_target);
  }
}

void MultishotNode::change_view(Slot from_slot, View new_view) {
  // Move every started, unfinalized slot >= from_slot to the new view
  // (Algorithm 2); abort their tentative blocks and exchange suggest/proof
  // so the new leaders can re-propose safe values.
  slot_scratch_.clear();
  slots_.for_each([&](Slot t, SlotState& ts) {
    if (t < from_slot || !ts.started || new_view <= ts.view) return;
    ts.view = new_view;
    ts.proposed = false;
    cancel_batch_timer(ts);  // fresh re-proposals never wait for transactions
    arm_timer(t);
    slot_scratch_.push_back(t);
  });
  for (const Slot t : slot_scratch_) {
    SlotState& ts = *slots_.find(t);
    broadcast_ms(MsProof{t, new_view, ts.record.highest(1), ts.record.prev(1),
                         ts.record.highest(4)});
    send_ms(cfg_.leader_of(t, new_view),
            MsSuggest{t, new_view, ts.record.highest(2), ts.record.prev(2),
                      ts.record.highest(3)});
  }
  for (const Slot t : slot_scratch_) {
    try_propose(t);
    try_vote(t);  // a proposal for the new view may already be buffered
  }
}

Slot MultishotNode::lowest_unfinalized_started() const {
  Slot found = 0;
  slots_.for_each([&](Slot s, const SlotState& st) {
    if (found == 0 && st.started && !chain_.is_finalized(s)) found = s;
  });
  return found != 0 ? found : chain_.first_unfinalized();
}

void MultishotNode::on_timer(runtime::TimerId id) {
  if (id == sync_.timer) {
    // Range-sync progress timer: with adoptions since the last request,
    // keep the pipeline streaming (cursor re-request, which also rotates to
    // whichever peers are alive); a request window that adopted nothing
    // means the advertised frontier was stale or Byzantine (honest peers
    // only sent refusal hints) -- drop the sync rather than re-broadcast
    // forever. Genuine lag keeps producing fresh frontier hints through the
    // view-change -> ChainInfo path and re-triggers it; a forged frontier
    // costs at most one request round per poison message.
    sync_.timer = 0;
    if (sync_.target > chain_.first_unfinalized() && sync_.adopted_since_request > 0) {
      send_sync_request();
    } else {
      sync_.target = 0;
      sync_.requested_upto = 0;
    }
    return;
  }
  if (id == ckpt_.timer) {
    // Checkpoint-fetch progress timer: with new bytes or vouches since the
    // last firing, re-broadcast the request (responders may have rotated or
    // the chosen identity switched); a silent window abandons the fetch --
    // the next refusal round re-derives a fresh anchor from live hints.
    ckpt_.timer = 0;
    if (ckpt_.anchor == 0) return;
    if (chain_.finalized_count() >= ckpt_.anchor) {
      // Overtaken: range sync / adoption caught up past the anchor.
      finish_ckpt_fetch();
      return;
    }
    std::uint64_t progress = ckpt_.received;
    for (const auto& ident : ckpt_.identities) progress += ident.vouchers.count();
    if (progress > ckpt_.progress_mark) {
      ckpt_.progress_mark = progress;
      broadcast_ms(MsCheckpointRequest{ckpt_.anchor});
      ckpt_.timer = ctx().set_timer(sync_timeout());
    } else {
      finish_ckpt_fetch();
    }
    return;
  }
  // Resolve the timer to its slot by scanning the window: timers fire orders
  // of magnitude less often than votes arrive, so the bounded sweep beats
  // maintaining reverse-index maps on the hot path.
  Slot batch_slot = 0;
  Slot view_slot = 0;
  slots_.for_each([&](Slot s, SlotState& st) {
    if (st.batch_timer == id) batch_slot = s;
    if (st.timer == id) view_slot = s;
  });

  if (batch_slot != 0) {
    SlotState* st = slots_.find(batch_slot);
    st->batch_timer = 0;
    TBFT_ASSERT(batch_timers_armed_ > 0);
    --batch_timers_armed_;
    st->batch_waited = true;  // give up waiting; propose (filler if need be)
    try_propose(batch_slot);
    return;
  }
  if (view_slot == 0) return;
  SlotState* st = slots_.find(view_slot);
  st->timer = 0;
  if (chain_.is_finalized(view_slot)) return;

  // Idle-chain suppression: with nothing pending, the slot goes dormant
  // instead of re-arming -- submissions, proposals and view-change messages
  // wake it again, so an idle network truly quiesces.
  if (idle_quiescent()) {
    idle_suppressed_ = true;
    ctx().metrics().counter("multishot.idle.dormant_timers").add();
    return;
  }

  // Ask for a view change at the lowest aborted (unfinalized) slot (§6.2).
  const Slot target_slot = lowest_unfinalized_started();
  SlotState* tst = slot_state(target_slot, true);
  if (tst != nullptr) {
    const View target = std::max(tst->view + 1, tst->highest_vc_sent);
    tst->highest_vc_sent = target;
    ctx().metrics().counter("multishot.viewchange.sent").add();
    broadcast_ms(MsViewChange{target_slot, target});
  }
  // Content-recovery retransmission, same cadence: when the slot blocking
  // the finalized suffix is notarized but content-unknown, re-request the
  // bytes (the first request can race the responders' own catch-up, or a
  // pre-GST drop).
  heal_notarization_seams();
  const Slot gap = proposal_frontier();
  if (const auto nt = chain_.notarized(gap);
      nt && chain_.find_block(gap, nt->hash) == nullptr) {
    request_block_content(gap, nt->hash, /*retransmit=*/true);
  }
  arm_timer(view_slot);  // retransmission against pre-GST loss
}

void MultishotNode::note_block_claim(NodeId from, const Block& b) {
  const Slot first = chain_.first_unfinalized();
  if (b.slot < first || b.slot > first + kClaimWindow) return;
  ClaimSlab* slab = chain_claims_.ensure(b.slot);
  if (slab == nullptr) return;
  const std::uint64_t h = b.hash();
  ClaimSlab::Claim* claim = slab->find(h);
  if (claim == nullptr) {
    // One created claim per sender per slot: honest senders claim a
    // single hash, so only Byzantine fan-out is refused here.
    if (slab->sender_has_claim(from)) return;
    claim = slab->add(h, cfg_.n, max_claims_per_slot(cfg_.f));
    if (claim == nullptr) return;  // per-slot claim bound reached
    claim->block = b;
  }
  claim->senders.insert(from);
}

std::size_t MultishotNode::adopt_ready_claims() {
  // Adopt blocks with f+1 claims, in chain order (>= 1 honest claimer, and
  // honest finalized chains agree -- the unauthenticated model's only way
  // to trust a block without running consensus on it). note_finalized runs
  // per adopted block through the ChainStore hook.
  std::size_t adopted = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    ClaimSlab* slab = chain_claims_.find(chain_.first_unfinalized());
    if (slab == nullptr) break;
    for (std::size_t i = 0; i < slab->used; ++i) {
      ClaimSlab::Claim& claim = slab->claims[i];
      if (!qp_.is_blocking(claim.senders.count())) continue;
      if (chain_.force_finalize(claim.block)) {
        progress = true;
        ++adopted;
        break;
      }
    }
  }
  if (adopted > 0) {
    prune_slots();
    // The freshly adopted chain may unblock voting/proposing.
    const Slot next = chain_.first_unfinalized();
    try_vote(next);
    try_propose(next);
    // A caught-up node with pending transactions restarts the pipeline.
    if (cfg_.max_slots == 0 && !mempool_.empty()) {
      const Slot frontier = proposal_frontier();
      wake_slot(frontier);
      try_propose(frontier);
    }
  }
  return adopted;
}

void MultishotNode::handle(NodeId from, const MsChainInfo& m) {
  for (const Block& b : m.blocks) note_block_claim(from, b);
  adopt_ready_claims();
  note_frontier(m.frontier);
}

MsChainInfo MultishotNode::chain_info_for(Slot slot) const {
  MsChainInfo info;
  info.frontier = chain_.first_unfinalized();
  if (slot < chain_.tail_first()) return info;  // compacted: frontier hint only
  for (Slot s = slot;
       s <= chain_.finalized_count() && info.blocks.size() < MsChainInfo::kMaxBlocks; ++s) {
    info.blocks.push_back(*chain_.block_at(s));
  }
  return info;
}

// --- Range-sync catch-up ---------------------------------------------------

void MultishotNode::note_frontier(Slot frontier) {
  if (frontier > sync_.target) sync_.target = frontier;
  maybe_request_sync();
}

void MultishotNode::maybe_request_sync() {
  if (!cfg_.enable_sync) return;
  const Slot first = chain_.first_unfinalized();
  if (sync_.target <= first) {
    // Caught up with every frontier we ever heard of: sync is over.
    if (sync_.timer != 0) {
      ctx().cancel_timer(sync_.timer);
      sync_.timer = 0;
    }
    sync_.target = 0;
    sync_.requested_upto = 0;
    return;
  }
  // A checkpoint fetch owns the catch-up: ranged requests would be refused
  // again (the gap reaches below every answering tail) -- no timer-spin.
  if (ckpt_.anchor != 0) return;
  // Small gaps heal through the ChainInfo fast path without a round-trip.
  if (sync_.target <= first + MsChainInfo::kMaxBlocks) return;
  // An in-flight request still covers unadopted slots: let it stream.
  if (sync_.timer != 0 && sync_.requested_upto > first) return;
  send_sync_request();
}

void MultishotNode::send_sync_request() {
  const Slot first = chain_.first_unfinalized();
  sync_.requested_upto = std::min(sync_.target, first + kSyncPipelineDepth);
  sync_.adopted_since_request = 0;
  if (sync_.timer != 0) ctx().cancel_timer(sync_.timer);
  sync_.timer = ctx().set_timer(sync_timeout());
  ctx().metrics().counter("multishot.sync.requests").add();
  // Broadcast: adoption needs f+1 matching copies in the unauthenticated
  // model, so the range must come from f+1 peers anyway; a timeout simply
  // re-broadcasts from the current frontier (re-requesting from whichever
  // peers are alive).
  broadcast_ms(MsSyncRequest{first, sync_.requested_upto});
}

void MultishotNode::handle(NodeId from, const MsSyncRequest& m) {
  if (from == ctx().id()) return;  // own broadcast
  MsSyncChunk hint;
  hint.frontier = chain_.first_unfinalized();
  hint.tail_first = chain_.tail_first();
  // Serve only resident finalized blocks, within the pipeline bound (defends
  // responder bandwidth against Byzantine huge ranges).
  const Slot upto = std::min({m.upto, hint.frontier, m.from + kSyncPipelineDepth});
  if (m.from < chain_.tail_first() || m.from >= upto) {
    // Refusal with a hint: the range is compacted past our tail, or we hold
    // nothing the requester lacks. The (tail_first, frontier) pair tells the
    // requester whether checkpoint transfer is its only way back.
    ctx().metrics().counter("multishot.sync.refused").add();
    send_ms(from, hint);
    return;
  }
  for (Slot s = m.from; s < upto; s += slot_count(MsSyncChunk::kMaxBlocksPerChunk)) {
    MsSyncChunk out;
    out.frontier = hint.frontier;
    out.tail_first = hint.tail_first;
    out.start = s;
    const Slot stop = std::min(upto, s + slot_count(MsSyncChunk::kMaxBlocksPerChunk));
    for (Slot t = s; t < stop; ++t) out.blocks.push_back(*chain_.block_at(t));
    ctx().metrics().counter("multishot.sync.chunks_sent").add();
    send_ms(from, out);
  }
}

void MultishotNode::handle(NodeId from, const MsSyncChunk& m) {
  if (from == ctx().id()) return;
  for (const Block& b : m.blocks) note_block_claim(from, b);
  if (const std::size_t adopted = adopt_ready_claims(); adopted > 0) {
    sync_.adopted_since_request += adopted;
    ctx().metrics().counter("multishot.sync.blocks_adopted").add(adopted);
  }
  // A refusal whose tail starts past our frontier proves this peer cannot
  // serve our gap from resident blocks: record its servable checkpoint
  // range and pivot to checkpoint transfer once f+1 peers agree (instead of
  // spinning on the progress timer re-requesting a compacted range).
  if (m.start == 0 && m.blocks.empty() && m.frontier > chain_.first_unfinalized() &&
      m.tail_first > chain_.first_unfinalized()) {
    note_ckpt_range(from, m.tail_first, m.frontier);
  }
  // Continuation cursor: adopting up to requested_upto makes the next
  // maybe_request_sync issue the follow-up range; a fresher frontier in the
  // chunk extends the target first.
  note_frontier(m.frontier);
}

// --- Checkpoint state transfer ---------------------------------------------

void MultishotNode::note_ckpt_range(NodeId from, Slot tail_first, Slot frontier) {
  if (!cfg_.enable_sync) return;
  if (ckpt_.peers.size() != cfg_.n) ckpt_.peers.assign(cfg_.n, {});
  ckpt_.peers[from] = CkptFetch::PeerRange{tail_first, frontier};
  maybe_start_ckpt_fetch();
}

void MultishotNode::maybe_start_ckpt_fetch() {
  if (ckpt_.anchor != 0) return;  // one fetch at a time
  // Anchor choice: the lowest advertised tip (frontier - 1). Checkpoints
  // only trail tips, so every roughly-caught-up peer can recompute its
  // checkpoint there; peers whose compaction already passed it (tail_first
  // - 1 > S) do not qualify. The fetch starts only when a blocking set
  // (f+1: at least one honest) can serve the anchor -- fewer could mean f
  // Byzantine hints fabricating an unservable slot.
  Slot anchor = 0;
  for (const auto& p : ckpt_.peers) {
    if (p.frontier == 0) continue;
    if (anchor == 0 || p.frontier - 1 < anchor) anchor = p.frontier - 1;
  }
  if (anchor == 0 || anchor <= chain_.finalized_count()) return;
  std::uint32_t servers = 0;
  for (const auto& p : ckpt_.peers) {
    if (p.frontier == 0) continue;
    if (p.tail_first - 1 <= anchor && anchor <= p.frontier - 1) ++servers;
  }
  if (!qp_.is_blocking(servers)) return;
  ckpt_.reset_transfer();
  ckpt_.anchor = anchor;
  if (ckpt_.timer != 0) ctx().cancel_timer(ckpt_.timer);
  ckpt_.timer = ctx().set_timer(sync_timeout());
  ctx().metrics().counter("multishot.ckpt.requests").add();
  broadcast_ms(MsCheckpointRequest{anchor});
}

void MultishotNode::handle(NodeId from, const MsCheckpointRequest& m) {
  if (from == ctx().id()) return;  // own broadcast
  const auto cp = chain_.finalized().checkpoint_at(m.at);
  if (!cp.has_value()) {
    // Outside [checkpoint.slot, tip]: compacted below, or not finalized yet.
    ctx().metrics().counter("multishot.ckpt.refused").add();
    return;
  }
  serde::Writer w;
  chain_.finalized().encode_commit_state(w, m.at);
  const std::vector<std::uint8_t> blob = w.take();
  const std::uint64_t state_hash = fnv1a64(blob);
  ctx().metrics().counter("multishot.ckpt.served").add();
  for (std::size_t off = 0; off < blob.size(); off += MsCheckpointChunk::kMaxChunkBytes) {
    MsCheckpointChunk out;
    out.cp = *cp;
    out.state_hash = state_hash;
    out.state_size = blob.size();
    out.offset = off;
    const std::size_t len = std::min(MsCheckpointChunk::kMaxChunkBytes, blob.size() - off);
    out.data.assign(blob.begin() + static_cast<std::ptrdiff_t>(off),
                    blob.begin() + static_cast<std::ptrdiff_t>(off + len));
    send_ms(from, out);
  }
}

void MultishotNode::handle(NodeId from, const MsCheckpointChunk& m) {
  if (from == ctx().id()) return;
  if (ckpt_.anchor == 0 || m.cp.slot != ckpt_.anchor) return;  // stale / unsolicited
  // Identity of the offered state: checkpoint fields + blob hash + size.
  // Vouching is over the identity; the bytes themselves are verified against
  // state_hash before install, so only ONE sender's bytes are ever buffered.
  std::uint64_t idhash = hash_combine(m.cp.slot, m.cp.chain_hash);
  idhash = hash_combine(idhash, m.cp.tx_count);
  idhash = hash_combine(idhash, m.cp.boundary_hash);
  idhash = hash_combine(idhash, m.state_hash);
  idhash = hash_combine(idhash, m.state_size);

  std::size_t idx = ckpt_.identities.size();
  for (std::size_t i = 0; i < ckpt_.identities.size(); ++i) {
    if (ckpt_.identities[i].idhash == idhash) {
      idx = i;
      break;
    }
  }
  if (idx == ckpt_.identities.size()) {
    if (idx == max_ckpt_identities(cfg_.f)) return;  // Byzantine fan-out bound
    CkptFetch::Identity ident;
    ident.idhash = idhash;
    ident.cp = m.cp;
    ident.state_hash = m.state_hash;
    ident.state_size = m.state_size;
    ident.vouchers.reset(cfg_.n);
    ckpt_.identities.push_back(std::move(ident));
  }
  CkptFetch::Identity& ident = ckpt_.identities[idx];
  ident.vouchers.insert(from);

  if (ckpt_.chosen == SIZE_MAX) ckpt_.chosen = idx;
  if (ckpt_.chosen == idx) {
    // Contiguous fill of the chosen identity's blob (chunks may repeat on
    // re-request; overlaps are tolerated, gaps wait for re-delivery).
    if (m.offset <= ckpt_.received && m.offset + m.data.size() > ckpt_.received) {
      const std::size_t skip = static_cast<std::size_t>(ckpt_.received - m.offset);
      ckpt_.buf.insert(ckpt_.buf.end(),
                       m.data.begin() + static_cast<std::ptrdiff_t>(skip), m.data.end());
      ckpt_.received = m.offset + m.data.size();
    }
  } else if (qp_.is_blocking(ident.vouchers.count())) {
    // A different identity reached the vouching bar first (the initially
    // chosen sender was Byzantine or rotation-skewed): switch to it and
    // re-request its bytes.
    ckpt_.chosen = idx;
    ckpt_.buf.clear();
    ckpt_.received = 0;
    broadcast_ms(MsCheckpointRequest{ckpt_.anchor});
    return;
  }

  const CkptFetch::Identity& chosen = ckpt_.identities[ckpt_.chosen];
  if (qp_.is_blocking(chosen.vouchers.count()) && ckpt_.received == chosen.state_size &&
      fnv1a64(ckpt_.buf) == chosen.state_hash) {
    install_fetched_checkpoint(chosen);
  }
}

void MultishotNode::install_fetched_checkpoint(const CkptFetch::Identity& ident) {
  if (!chain_.install_checkpoint(ident.cp, ckpt_.buf)) {
    finish_ckpt_fetch();  // overtaken while the transfer streamed
    return;
  }
  ctx().metrics().counter("multishot.ckpt.installed").add();
  // Mempool reconciliation against the adopted prefix: entries the digest
  // set reports committed leave the pool (their blocks are compacted -- the
  // per-block reconciliation in note_finalized never saw them); inflight
  // entries attributed to swallowed slots are settled either way.
  auto& entries = mempool_.entries();
  for (auto it = entries.begin(); it != entries.end();) {
    if (chain_.commit_slot(it->tx, it->hash) != 0) {
      it = mempool_.erase(it);
      continue;
    }
    if (it->inflight && it->slot <= ident.cp.slot) mempool_.release(*it);
    ++it;
  }
  finish_ckpt_fetch();
  prune_slots();
  // Resume: the remaining gap (anchor .. live frontier) is range-syncable
  // again, and the freshly advanced chain may unblock voting/proposing.
  const Slot next = chain_.first_unfinalized();
  wake_slot(next);
  try_vote(next);
  try_propose(next);
  maybe_request_sync();
}

void MultishotNode::finish_ckpt_fetch() {
  if (ckpt_.timer != 0) {
    ctx().cancel_timer(ckpt_.timer);
    ckpt_.timer = 0;
  }
  ckpt_.reset_transfer();
  // Peer ranges are cleared too: they described a gap that no longer exists
  // (or hints that went stale); the next refusal round repopulates them.
  ckpt_.peers.assign(ckpt_.peers.size(), {});
}

// --- Unfinalized-block content recovery -------------------------------------

void MultishotNode::request_block_content(Slot s, std::uint64_t hash, bool retransmit) {
  SlotState* st = slot_state(s, true);
  if (st == nullptr) return;  // outside the window: nothing to recover into
  // try_propose / on_notarized re-enter on nearly every message; broadcast
  // only when the want changes, and otherwise ride the view-timer cadence
  // (the retransmit path) so a wedged slot costs one request per timeout.
  if (st->wanted_hash == hash && !retransmit) return;
  st->wanted_hash = hash;
  ctx().metrics().counter("multishot.blockreq.sent").add();
  // Broadcast: the hash authenticates the reply, so any single holder --
  // a voter that kept its candidate, or a node that already finalized the
  // slot -- suffices. Retransmission rides the view-timer cadence.
  broadcast_ms(MsBlockRequest{s, hash});
}

void MultishotNode::handle(NodeId from, const MsBlockRequest& m) {
  if (from == ctx().id()) return;  // own broadcast
  const Block* b = chain_.find_block(m.slot, m.block_hash);
  if (b == nullptr) {
    // The slot may have finalized here (candidates pruned): serve from the
    // resident finalized tail when the hash matches.
    const Block* fb = chain_.block_at(m.slot);
    if (fb != nullptr && fb->hash() == m.block_hash) b = fb;
  }
  if (b == nullptr) return;
  ctx().metrics().counter("multishot.blockreq.served").add();
  send_ms(from, MsBlockReply{m.slot, *b});
}

void MultishotNode::handle(NodeId from, const MsBlockReply& m) {
  if (from == ctx().id() || chain_.is_finalized(m.slot)) return;
  SlotState* st = slot_state(m.slot, false);
  const std::uint64_t h = m.block.hash();
  // Accept only content this node is actually waiting for: its recorded
  // recovery want or the slot's current notarization. Anything else is a
  // Byzantine plant and may not occupy candidate storage.
  const bool wanted = (st != nullptr && st->wanted_hash == h) ||
                      [&] {
                        const auto nt = chain_.notarized(m.slot);
                        return nt && nt->hash == h;
                      }();
  if (!wanted) return;
  if (!chain_.add_block(m.block)) return;  // window race: drop
  if (st != nullptr && st->wanted_hash == h) st->wanted_hash = 0;
  ctx().metrics().counter("multishot.blockreq.adopted").add();
  // The recovered bytes can complete a notarization's finalization chain,
  // expose a parent-link seam that now has enough content to heal, satisfy
  // a pending vote, or unblock the Rule-1-forced re-proposal that asked
  // for them.
  heal_notarization_seams();
  finalize_progress();
  const Slot next = chain_.first_unfinalized();
  try_vote(m.slot);
  try_propose(m.slot);
  try_vote(next);
  try_propose(next);
}

// --- Client-request forwarding ---------------------------------------------

void MultishotNode::handle(NodeId from, const MsForwardTx& m) {
  (void)from;
  auto& metrics = ctx().metrics();
  // Dedup, hashed once: committed requests answer from the commit index;
  // a copy already pending here (submitted directly while the relay was in
  // flight) from the pool probe; in-flight re-forwards (a client retrying
  // via different nodes) from the recent set.
  const std::uint64_t h = fnv1a64(m.tx);
  if (chain_.commit_slot(m.tx, h) != 0 || mempool_.contains(h, m.tx) ||
      forward_seen_.contains(h)) {
    metrics.counter("multishot.forward.deduped").add();
    return;
  }
  const auto verdict =
      mempool_.push(std::vector<std::uint8_t>(m.tx), cfg_.max_batch_bytes, h);
  if (verdict == BoundedMempool::Admit::kRejected) {
    // Not recorded as seen: a rejected relay must stay retryable once the
    // pool drains, or one full-pool moment would poison the request here.
    metrics.counter("multishot.forward.rejected").add();
    return;
  }
  forward_seen_.insert(h);
  mempool_.entries().back().relayed = true;
  metrics.counter("multishot.forward.received").add();
  // Single hop: a relayed request is never re-forwarded; it wakes batching
  // and the idle chain exactly like a local submission.
  after_admission();
}

bool chains_prefix_consistent(const std::vector<MultishotNode*>& nodes) {
  // All pairs, not just each-vs-longest: with per-node compaction two nodes
  // can be incomparable against the longest chain (its checkpoint passed
  // their tips) yet still comparable against each other. A pair where no
  // common slot is resident on both sides AND the digest floor lies above
  // the common tip is vacuously consistent -- the witnessing data no longer
  // exists anywhere; production tails (4096) keep every in-simulation
  // overlap resident, so this only arises in deliberate tiny-tail tests.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const MultishotNode* a = nodes[i];
    if (a == nullptr) continue;
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      const MultishotNode* b = nodes[j];
      if (b == nullptr) continue;
      const Slot common = std::min(a->finalized_count(), b->finalized_count());
      if (common == 0) continue;
      // Resident overlap: blocks must be byte-equal.
      const Slot lo = std::max(a->chain().tail_first(), b->chain().tail_first());
      for (Slot s = lo; s <= common; ++s) {
        const Block* ba = a->block_at(s);
        const Block* bb = b->block_at(s);
        if (ba == nullptr || bb == nullptr || !(*ba == *bb)) return false;
      }
      // Prefixes reaching below a tail: cumulative digests must agree at
      // the deepest slot both stores can still digest.
      const Slot dlo = std::max(a->chain().checkpoint().slot, b->chain().checkpoint().slot);
      if (dlo <= common) {
        const auto da = a->chain().prefix_digest(common);
        const auto db = b->chain().prefix_digest(common);
        if (!da || !db || *da != *db) return false;
      }
    }
  }
  return true;
}

}  // namespace tbft::multishot
