#include "multishot/node.hpp"

#include <algorithm>
#include <functional>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace tbft::multishot {

namespace {
/// Bound on per-slot maps keyed by view (defends against Byzantine
/// view-number spam; honest traffic uses a handful of views).
constexpr std::size_t kMaxTrackedViewsPerSlot = 32;
/// ChainInfo claims are only tracked this far past the finalized tip.
constexpr Slot kClaimWindow = 16;

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

bool frames_contain(const std::vector<std::span<const std::uint8_t>>& frames,
                    std::span<const std::uint8_t> tx) {
  for (const auto& f : frames) {
    if (f.size() == tx.size() && std::equal(f.begin(), f.end(), tx.begin())) return true;
  }
  return false;
}

/// Hash-indexed view of a block's frames for mempool reconciliation: sorted
/// (fnv1a64, frame) pairs, probed per entry in O(log frames) with an exact
/// byte comparison only on hash hits.
struct FrameIndex {
  explicit FrameIndex(const std::vector<std::span<const std::uint8_t>>& frames) {
    keyed.reserve(frames.size());
    for (const auto& f : frames) keyed.emplace_back(fnv1a64(f), f);
    std::sort(keyed.begin(), keyed.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  [[nodiscard]] bool contains(std::uint64_t hash, std::span<const std::uint8_t> tx) const {
    auto it = std::lower_bound(keyed.begin(), keyed.end(), hash,
                               [](const auto& e, std::uint64_t h) { return e.first < h; });
    for (; it != keyed.end() && it->first == hash; ++it) {
      const auto& f = it->second;
      if (f.size() == tx.size() && std::equal(f.begin(), f.end(), tx.begin())) return true;
    }
    return false;
  }

  std::vector<std::pair<std::uint64_t, std::span<const std::uint8_t>>> keyed;
};
}  // namespace

std::vector<std::uint8_t> encode_ms(const MsMessage& m) {
  serde::Writer w;
  std::visit([&w](const auto& msg) { msg.encode(w); }, m);
  return w.take();
}

Payload encode_ms_payload(const MsMessage& m, serde::Writer& scratch, bool cache_decoded) {
  return encode_to_payload(m, scratch, cache_decoded);
}

std::optional<MsMessage> decode_ms(std::span<const std::uint8_t> payload) {
  serde::Reader r(payload);
  const auto tag = r.u8();
  if (!r.ok()) return std::nullopt;
  MsMessage out;
  switch (static_cast<MsType>(tag)) {
    case MsType::Proposal: out = MsProposal::decode(r); break;
    case MsType::Vote: out = MsVote::decode(r); break;
    case MsType::Suggest: out = MsSuggest::decode(r); break;
    case MsType::Proof: out = MsProof::decode(r); break;
    case MsType::ViewChange: out = MsViewChange::decode(r); break;
    case MsType::ChainInfo: out = MsChainInfo::decode(r); break;
    default: return std::nullopt;
  }
  if (!r.done()) return std::nullopt;
  return out;
}

MultishotNode::MultishotNode(MultishotConfig cfg)
    : cfg_(cfg),
      qp_(cfg.quorum_params()),
      mempool_(cfg.mempool_capacity, cfg.mempool_policy) {}

void MultishotNode::on_start() {
  start_slot(1);
  try_propose(1);
}

bool MultishotNode::submit_tx(std::vector<std::uint8_t> tx) {
  const auto verdict = mempool_.push(std::move(tx), cfg_.max_batch_bytes);
  auto& metrics = ctx().metrics();
  switch (verdict) {
    case BoundedMempool::Admit::kRejected:
      metrics.counter("multishot.mempool.rejected").add();
      break;
    case BoundedMempool::Admit::kDroppedOldest:
      metrics.counter("multishot.mempool.dropped_oldest").add();
      [[fallthrough]];
    case BoundedMempool::Admit::kAdmitted:
      metrics.counter("multishot.mempool.admitted").add();
      break;
  }
  metrics.histogram("multishot.mempool.depth").record(static_cast<double>(mempool_.size()));
  if (verdict == BoundedMempool::Admit::kRejected) return false;

  // A leader deferring a fresh proposal for transactions (batch_timeout) can
  // propose now.
  if (!batch_timer_slots_.empty()) {
    std::vector<Slot> woken;
    woken.reserve(batch_timer_slots_.size());
    for (const auto& [tid, s] : batch_timer_slots_) woken.push_back(s);
    for (const Slot s : woken) {
      if (SlotState* st = slot_state(s, false); st != nullptr) cancel_batch_timer(*st);
    }
    for (const Slot s : woken) try_propose(s);
  }
  return true;
}

View MultishotNode::view_of(Slot s) const {
  const auto it = slots_.find(s);
  return it == slots_.end() ? 0 : it->second.view;
}

bool MultishotNode::tx_finalized(std::span<const std::uint8_t> tx) const {
  for (const auto& b : chain_.finalized_chain()) {
    if (frames_contain(payload_frames(b.payload), tx)) return true;
  }
  return false;
}

MultishotNode::SlotState* MultishotNode::slot_state(Slot s, bool create) {
  if (s < 1 || chain_.is_finalized(s)) return nullptr;
  if (s > chain_.first_unfinalized() + ChainStore::kWindow) return nullptr;
  const auto it = slots_.find(s);
  if (it != slots_.end()) return &it->second;
  if (!create) return nullptr;
  SlotState& st = slots_[s];
  st.vc_highest.assign(cfg_.n, kNoView);
  st.suggests.assign(cfg_.n, std::nullopt);
  st.proofs.assign(cfg_.n, std::nullopt);
  return &st;
}

void MultishotNode::start_slot(Slot s) {
  SlotState* st = slot_state(s, true);
  if (st == nullptr || st->started) return;
  st->started = true;
  arm_timer(s);
}

void MultishotNode::arm_timer(Slot s) {
  SlotState* st = slot_state(s, false);
  if (st == nullptr) return;
  if (st->timer != 0) {
    ctx().cancel_timer(st->timer);
    timer_slots_.erase(st->timer);
  }
  st->timer = ctx().set_timer(cfg_.view_timeout());
  timer_slots_[st->timer] = s;
}

MultishotNode::BatchDraft MultishotNode::build_batch(View view) {
  BatchDraft draft;
  serde::Writer w;
  w.varint(static_cast<std::uint64_t>(view));  // nonce: distinct across views
  for (auto& e : mempool_.entries()) {
    if (e.inflight) continue;  // already in one of my outstanding proposals
    if (draft.entries.size() >= cfg_.max_batch_txs) break;
    const std::size_t frame = varint_size(e.tx.size()) + e.tx.size();
    if (!draft.entries.empty() && w.size() + frame > cfg_.max_batch_bytes) break;
    w.bytes(e.tx);
    draft.entries.push_back(&e);
  }
  draft.payload = w.take();
  if (draft.payload.size() < cfg_.default_payload_bytes) {
    draft.payload.resize(cfg_.default_payload_bytes, 0);
  }
  return draft;
}

void MultishotNode::commit_batch(BatchDraft& draft, Slot s, std::size_t payload_bytes) {
  for (auto* e : draft.entries) mempool_.mark_inflight(*e, s);
  auto& metrics = ctx().metrics();
  metrics.histogram("multishot.batch.txs").record(static_cast<double>(draft.entries.size()));
  metrics.histogram("multishot.batch.bytes").record(static_cast<double>(payload_bytes));
}

bool MultishotNode::defer_for_batch(Slot s, SlotState& st) {
  if (cfg_.batch_timeout <= 0 || st.batch_waited) return false;
  if (mempool_.available() > 0) {
    cancel_batch_timer(st);
    return false;
  }
  if (st.batch_timer == 0) {
    st.batch_timer = ctx().set_timer(cfg_.batch_timeout);
    batch_timer_slots_[st.batch_timer] = s;
  }
  return true;
}

void MultishotNode::cancel_batch_timer(SlotState& st) {
  if (st.batch_timer == 0) return;
  ctx().cancel_timer(st.batch_timer);
  batch_timer_slots_.erase(st.batch_timer);
  st.batch_timer = 0;
}

std::optional<std::uint64_t> MultishotNode::parent_for_proposal(Slot s) const {
  const Slot prev = s - 1;
  if (prev == 0) return kGenesisHash;
  if (chain_.is_finalized(prev)) return chain_.finalized_chain()[prev - 1].hash();
  // A notarization of the previous slot is the convergent signal: build on
  // it whenever one exists (any view; value stability in try_propose keeps
  // re-proposals equal to notarizations, so this stays consistent across
  // view changes and across equivocation-split perceptions). Only in the
  // good-case pipelining window -- before the previous slot has notarized
  // at all -- build directly on the received proposal (Fig. 2 proposes on
  // *receipt* of the previous proposal).
  if (const auto n = chain_.notarized(prev)) return n->hash;
  const auto it = slots_.find(prev);
  if (it != slots_.end()) {
    const auto pit = it->second.proposal_by_view.find(it->second.view);
    if (pit != it->second.proposal_by_view.end()) return pit->second;
  }
  return std::nullopt;
}

void MultishotNode::try_propose(Slot s) {
  if (cfg_.max_slots != 0 && s > cfg_.max_slots) return;
  SlotState* st = slot_state(s, true);
  if (st == nullptr || st->proposed) return;
  if (cfg_.leader_of(s, st->view) != ctx().id()) return;

  const auto parent = parent_for_proposal(s);
  if (!parent) return;

  Block block;
  if (st->view == 0) {
    if (defer_for_batch(s, *st)) return;
    BatchDraft draft = build_batch(0);
    const std::size_t payload_bytes = draft.payload.size();
    block = Block{s, *parent, ctx().id(), std::move(draft.payload)};
    commit_batch(draft, s, payload_bytes);
  } else {
    // Rule 1 over this slot's suggest messages. The leader's "initial
    // value" is the slot's already-notarized block when one exists (value
    // stability: keeps notarizations from different views linked so the
    // depth-4 finality rule can complete across view changes even when a
    // crashed node leads one slot of the window in every view); a fresh
    // block otherwise.
    std::vector<core::SuggestFrom> suggests;
    for (NodeId p = 0; p < cfg_.n; ++p) {
      if (st->suggests[p] && st->suggests[p]->view == st->view) {
        suggests.push_back({p, st->suggests[p]->as_core()});
      }
    }
    std::optional<Block> preferred;
    BatchDraft draft;
    bool fresh = false;
    if (const auto nt = chain_.notarized(s)) {
      if (const Block* nb = chain_.find_block(s, nt->hash);
          nb != nullptr && nb->parent_hash == *parent) {
        preferred = *nb;
      }
    }
    if (!preferred) {
      draft = build_batch(st->view);
      preferred = Block{s, *parent, ctx().id(), std::move(draft.payload)};
      fresh = true;
    }
    const auto val = core::leader_find_safe_value(qp_, st->view, preferred->value(), suggests);
    if (!val) return;
    if (val->id == preferred->hash()) {
      // Mark the batch only when the fresh block is actually proposed; a
      // Rule-1-forced value discards the draft at no cost.
      if (fresh) commit_batch(draft, s, preferred->payload.size());
      block = std::move(*preferred);
    } else {
      // Rule 1 forces a previously proposed block: re-propose it.
      const Block* existing = chain_.find_block(s, val->id);
      if (existing == nullptr) return;  // content unknown; wait for it
      block = *existing;
    }
  }

  st->proposed = true;
  chain_.add_block(block);
  // The proposal is the leader's implicit vote for its own slot (paper
  // §6.1): record vote-1 locally; the broadcast is counted by receivers.
  if (st->voted.find(st->view) == st->voted.end()) {
    st->voted[st->view] = block.hash();
    const auto& high = st->record.highest(1);
    if (!high.present() || st->view > high.view) {
      st->record.record(1, st->view, block.value());
    }
  }
  do_propose(s, st->view, block);
}

void MultishotNode::do_propose(Slot s, View v, const Block& block) {
  broadcast_ms(MsProposal{s, v, block});
}

void MultishotNode::try_vote(Slot s) {
  SlotState* st = slot_state(s, false);
  if (st == nullptr) return;
  if (st->voted.find(st->view) != st->voted.end()) return;
  const auto pit = st->proposal_by_view.find(st->view);
  if (pit == st->proposal_by_view.end()) return;
  const std::uint64_t h = pit->second;
  const Block* b = chain_.find_block(s, h);
  if (b == nullptr) return;

  // Chaining condition (§6.1): the parent must be notarized and the block
  // must extend it.
  const auto parent = chain_.required_parent(s);
  if (!parent || *parent != b->parent_hash) return;

  // Safety condition: Rule 3 in views > 0 (all values safe in view 0).
  if (st->view > 0) {
    std::vector<core::ProofFrom> proofs;
    for (NodeId p = 0; p < cfg_.n; ++p) {
      if (st->proofs[p] && st->proofs[p]->view == st->view) {
        proofs.push_back({p, st->proofs[p]->as_core()});
      }
    }
    if (!core::proposal_is_safe(qp_, st->view, Value{h}, proofs)) return;
  }

  st->voted[st->view] = h;
  record_vote_effects(s, st->view, *b);
  broadcast_ms(MsVote{s, st->view, h});
}

void MultishotNode::record_vote_effects(Slot s, View v, const Block& head) {
  // A head vote for slot s is vote-1 for s and implicitly vote-k for slot
  // s-k+1 along the parent chain (Fig. 2); phases are preserved in local
  // memory for future suggest/proof messages.
  const Block* b = &head;
  for (int phase = 1; phase <= 4; ++phase) {
    const Slot target = s - static_cast<Slot>(phase - 1);
    if (target < 1 || s < static_cast<Slot>(phase - 1)) break;
    if (SlotState* ts = slot_state(target, false); ts != nullptr) {
      const auto& high = ts->record.highest(phase);
      if (!high.present() || v > high.view) {
        ts->record.record(phase, v, b->value());
      }
    }
    if (phase == 4 || target == 1) break;
    const Slot parent_slot = target - 1;
    const Block* pb = chain_.find_block(parent_slot, b->parent_hash);
    if (pb == nullptr) {
      if (chain_.is_finalized(parent_slot) &&
          chain_.finalized_chain()[parent_slot - 1].hash() == b->parent_hash) {
        pb = &chain_.finalized_chain()[parent_slot - 1];
      } else {
        break;  // ancestor content unknown; skip deeper phases
      }
    }
    b = pb;
  }
}

void MultishotNode::on_notarized(Slot s) {
  if (record_timeline_) notarized_at_.try_emplace(s, ctx().now());
  finalize_progress();
  try_vote(s);
  try_vote(s + 1);
  try_propose(s + 1);
}

void MultishotNode::finalize_progress() {
  const std::size_t before = chain_.finalized_chain().size();
  chain_.try_finalize();
  const auto& ch = chain_.finalized_chain();
  if (ch.size() == before) return;
  for (std::size_t i = before; i < ch.size(); ++i) note_finalized(ch[i]);
  prune_slots();
}

void MultishotNode::note_finalized(const Block& b) {
  ctx().report_decision(b.slot, b.value());
  // Mempool reconciliation against the winning block: transactions that made
  // it into the chain leave the pool; my inflight transactions attributed to
  // this (or an earlier) slot whose proposal lost/aborted become available
  // again -- the slot's outcome is now settled, so this cannot double-include.
  const FrameIndex index(payload_frames(b.payload));
  auto& entries = mempool_.entries();
  for (auto it = entries.begin(); it != entries.end();) {
    if (index.contains(it->hash, it->tx)) {
      it = mempool_.erase(it);
      continue;
    }
    if (it->inflight && it->slot <= b.slot) mempool_.release(*it);
    ++it;
  }
  if (commit_hook_) commit_hook_(b, ctx().now());
}

void MultishotNode::prune_slots() {
  const Slot first = chain_.first_unfinalized();
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (it->first < first) {
      if (it->second.timer != 0) {
        ctx().cancel_timer(it->second.timer);
        timer_slots_.erase(it->second.timer);
      }
      cancel_batch_timer(it->second);
      it = slots_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = chain_claims_.begin(); it != chain_claims_.end();) {
    it = (it->first.first < first) ? chain_claims_.erase(it) : std::next(it);
  }
  for (auto it = claimed_blocks_.begin(); it != claimed_blocks_.end();) {
    it = (it->first.first < first) ? claimed_blocks_.erase(it) : std::next(it);
  }
}

void MultishotNode::on_message(NodeId from, const sim::Payload& payload) {
  // Traffic from non-members (e.g. client actors with ids >= n) is ignored:
  // per-sender state below is sized for the n protocol participants.
  if (from >= cfg_.n) return;
  // Decode-once fast path for broadcasts (cache attached by the encoder of
  // these exact bytes); point-to-point payloads take the total decode below.
  if (const MsMessage* cached = payload.cached<MsMessage>()) {
    std::visit([this, from](const auto& m) { handle(from, m); }, *cached);
    return;
  }
  const auto msg = decode_ms(payload.bytes());
  if (!msg) {
    ctx().metrics().counter("multishot.malformed").add();
    return;
  }
  std::visit([this, from](const auto& m) { handle(from, m); }, *msg);
}

void MultishotNode::handle(NodeId from, const MsProposal& m) {
  if (from != cfg_.leader_of(m.slot, m.view)) return;
  SlotState* st = slot_state(m.slot, true);
  if (st == nullptr) return;
  if (!chain_.add_block(m.block)) return;

  const auto [it, inserted] = st->proposal_by_view.try_emplace(m.view, m.block.hash());
  if (!inserted) return;  // first proposal per view wins; equivocation ignored
  if (record_timeline_) first_proposal_at_.try_emplace(m.slot, ctx().now());
  if (st->proposal_by_view.size() > kMaxTrackedViewsPerSlot) {
    st->proposal_by_view.erase(st->proposal_by_view.begin());
  }

  // Implicit leader vote (paper §6.1).
  auto& voters = st->votes[{m.view, m.block.hash()}];
  voters.insert(from);
  if (qp_.is_quorum(voters.size()) && chain_.notarize(m.slot, m.view, m.block.hash())) {
    on_notarized(m.slot);
  }

  if (m.view >= st->view) {
    // Receiving the proposal for slot s starts slot s+1 (§6.2) and lets the
    // next leader pipeline its own proposal (Fig. 2).
    start_slot(m.slot + 1);
    try_vote(m.slot);
    try_propose(m.slot + 1);
  }
}

void MultishotNode::handle(NodeId from, const MsVote& m) {
  SlotState* st = slot_state(m.slot, true);
  if (st == nullptr) return;
  auto& voters = st->votes[{m.view, m.block_hash}];
  voters.insert(from);
  if (st->votes.size() > kMaxTrackedViewsPerSlot * 4) {
    st->votes.erase(st->votes.begin());
  }
  if (qp_.is_quorum(voters.size()) && chain_.notarize(m.slot, m.view, m.block_hash)) {
    on_notarized(m.slot);
  }
}

void MultishotNode::handle(NodeId from, const MsSuggest& m) {
  if (cfg_.leader_of(m.slot, m.view) != ctx().id()) return;
  SlotState* st = slot_state(m.slot, true);
  if (st == nullptr) return;
  auto& slot_msg = st->suggests[from];
  if (!slot_msg || m.view > slot_msg->view) slot_msg = m;
  try_propose(m.slot);
}

void MultishotNode::handle(NodeId from, const MsProof& m) {
  SlotState* st = slot_state(m.slot, true);
  if (st == nullptr) return;
  auto& slot_msg = st->proofs[from];
  if (!slot_msg || m.view > slot_msg->view) slot_msg = m;
  try_vote(m.slot);
}

void MultishotNode::handle(NodeId from, const MsViewChange& m) {
  if (chain_.is_finalized(m.slot)) {
    // Catch-up help: answer with a finalized-chain suffix.
    MsChainInfo info;
    const auto& ch = chain_.finalized_chain();
    for (Slot s = m.slot; s <= ch.size() && info.blocks.size() < MsChainInfo::kMaxBlocks; ++s) {
      info.blocks.push_back(ch[s - 1]);
    }
    if (from != ctx().id()) send_ms(from, info);
    return;
  }
  SlotState* st = slot_state(m.slot, true);
  if (st == nullptr) return;
  if (m.view <= st->vc_highest[from]) return;
  st->vc_highest[from] = m.view;

  auto kth_highest = [st](std::size_t k) {
    std::vector<View> sorted(st->vc_highest.begin(), st->vc_highest.end());
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    return sorted[k - 1];
  };

  const View echo_target = kth_highest(qp_.blocking_size());
  if (echo_target > st->highest_vc_sent && echo_target > st->view) {
    st->highest_vc_sent = echo_target;
    ctx().metrics().counter("multishot.viewchange.sent").add();
    broadcast_ms(MsViewChange{m.slot, echo_target});
  }
  const View enter_target = kth_highest(qp_.quorum_size());
  if (enter_target > st->view) {
    change_view(m.slot, enter_target);
  }
}

void MultishotNode::change_view(Slot from_slot, View new_view) {
  // Move every started, unfinalized slot >= from_slot to the new view
  // (Algorithm 2); abort their tentative blocks and exchange suggest/proof
  // so the new leaders can re-propose safe values.
  std::vector<Slot> affected;
  for (auto& [t, ts] : slots_) {
    if (t < from_slot || !ts.started || new_view <= ts.view) continue;
    ts.view = new_view;
    ts.proposed = false;
    cancel_batch_timer(ts);  // fresh re-proposals never wait for transactions
    arm_timer(t);
    affected.push_back(t);
  }
  for (const Slot t : affected) {
    SlotState& ts = slots_[t];
    broadcast_ms(MsProof{t, new_view, ts.record.highest(1), ts.record.prev(1),
                         ts.record.highest(4)});
    send_ms(cfg_.leader_of(t, new_view),
            MsSuggest{t, new_view, ts.record.highest(2), ts.record.prev(2),
                      ts.record.highest(3)});
  }
  for (const Slot t : affected) {
    try_propose(t);
    try_vote(t);  // a proposal for the new view may already be buffered
  }
}

Slot MultishotNode::lowest_unfinalized_started() const {
  for (const auto& [s, st] : slots_) {
    if (st.started && !chain_.is_finalized(s)) return s;
  }
  return chain_.first_unfinalized();
}

void MultishotNode::on_timer(sim::TimerId id) {
  if (const auto bit = batch_timer_slots_.find(id); bit != batch_timer_slots_.end()) {
    const Slot s = bit->second;
    batch_timer_slots_.erase(bit);
    if (SlotState* st = slot_state(s, false); st != nullptr && st->batch_timer == id) {
      st->batch_timer = 0;
      st->batch_waited = true;  // give up waiting; propose (filler if need be)
      try_propose(s);
    }
    return;
  }
  const auto tit = timer_slots_.find(id);
  if (tit == timer_slots_.end()) return;
  const Slot s = tit->second;
  timer_slots_.erase(tit);

  SlotState* st = slot_state(s, false);
  if (st == nullptr || st->timer != id) return;
  st->timer = 0;
  if (chain_.is_finalized(s)) return;

  // Ask for a view change at the lowest aborted (unfinalized) slot (§6.2).
  const Slot target_slot = lowest_unfinalized_started();
  SlotState* tst = slot_state(target_slot, true);
  if (tst != nullptr) {
    const View target = std::max(tst->view + 1, tst->highest_vc_sent);
    tst->highest_vc_sent = target;
    ctx().metrics().counter("multishot.viewchange.sent").add();
    broadcast_ms(MsViewChange{target_slot, target});
  }
  arm_timer(s);  // retransmission against pre-GST loss
}

void MultishotNode::handle(NodeId from, const MsChainInfo& m) {
  bool adopted_any = false;
  for (const Block& b : m.blocks) {
    if (b.slot < chain_.first_unfinalized() ||
        b.slot > chain_.first_unfinalized() + kClaimWindow) {
      continue;
    }
    const auto key = std::make_pair(b.slot, b.hash());
    claimed_blocks_[key] = b;
    chain_claims_[key].insert(from);
  }
  // Adopt blocks with f+1 claims, in chain order.
  bool progress = true;
  while (progress) {
    progress = false;
    const Slot s = chain_.first_unfinalized();
    for (const auto& [key, senders] : chain_claims_) {
      if (key.first != s || !qp_.is_blocking(senders.size())) continue;
      const Block& b = claimed_blocks_.at(key);
      if (chain_.force_finalize(b)) {
        note_finalized(b);
        progress = true;
        adopted_any = true;
        break;
      }
    }
  }
  if (adopted_any) {
    prune_slots();
    // The freshly adopted chain may unblock voting/proposing.
    const Slot next = chain_.first_unfinalized();
    try_vote(next);
    try_propose(next);
  }
}

}  // namespace tbft::multishot
