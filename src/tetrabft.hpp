#pragma once
// Public facade for embedding TetraBFT. Examples, tools and the workload
// engine program against this header instead of reaching into
// MultishotNode internals.
//
//   ClusterBuilder b;
//   b.nodes(4).delta_bound(50 * tbft::runtime::kMillisecond);
//   auto cluster = b.build_local();          // real-time: one thread/node
//   cluster->on_commit([](const tbft::runtime::Commit& c) { ... });
//   cluster->start();
//   cluster->node(0).submit({'t','x'});
//   cluster->wait_for([&]{ return done; }, 5 * tbft::runtime::kSecond);
//   cluster->stop();
//
// Two backends build from the same validated configuration:
//  - build_local(): a runtime::LocalRunner cluster -- wall-clock time, OS
//    threads, the deployment-shaped path;
//  - build_sim():   a sim::Simulation cluster -- deterministic virtual
//    time, the verification tool of record. Client actors (workload
//    generators) attach here; the facade adds every protocol node before
//    any client, and the Simulation rejects out-of-order additions with a
//    clear error instead of silently renumbering actors.

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <optional>

#include "multishot/node.hpp"
#include "runtime/host.hpp"
#include "runtime/local_runner.hpp"
#include "sim/runtime.hpp"
#include "storage/durable_chain.hpp"
#include "workload/generator.hpp"

namespace tbft {

class Cluster;

/// Non-owning handle to one replica of a local Cluster.
class NodeHandle {
 public:
  [[nodiscard]] NodeId id() const noexcept { return id_; }

  /// Submit a transaction to this replica's mempool. Runs on the replica's
  /// thread (serialized with its handlers); before Cluster::start() it
  /// applies immediately, which is how initial state is seeded.
  void submit(std::vector<std::uint8_t> tx);

 private:
  friend class Cluster;
  NodeHandle(Cluster& cluster, NodeId id) : cluster_(&cluster), id_(id) {}

  Cluster* cluster_;
  NodeId id_;
};

/// A real-time in-process TetraBFT cluster (runtime::LocalRunner backend).
class Cluster {
 public:
  using CommitCallback = std::function<void(const runtime::Commit&)>;

  ~Cluster();  // stops the runner

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] std::uint32_t size() const noexcept { return runner_.node_count(); }
  [[nodiscard]] NodeHandle node(NodeId id);

  /// Subscribe to every commit any replica publishes. Must be called before
  /// start(). Callbacks run on replica threads, serialized by the cluster;
  /// wait_for predicates are re-evaluated after each callback.
  void on_commit(CommitCallback cb);

  void start();
  /// Stop all replica threads. Idempotent; after stop() the replicas are
  /// quiescent and replica() inspection is safe from the caller's thread.
  void stop();

  /// Block until `pred()` holds or `timeout` elapses; `pred` is evaluated
  /// under the cluster's commit lock, re-checked on every commit. Returns
  /// whether the predicate held.
  bool wait_for(const std::function<bool()>& pred, runtime::Duration timeout);

  /// Direct replica access: only safe while the cluster is not running
  /// (before start(), after stop()) -- chain inspection, test assertions.
  [[nodiscard]] multishot::MultishotNode& replica(NodeId id);

  [[nodiscard]] runtime::LocalRunner& runner() noexcept { return runner_; }

  /// Replica `id`'s durability driver, or nullptr when the cluster was
  /// built without ClusterBuilder::data_dir (fully in-memory).
  [[nodiscard]] storage::DurableChain* durable(NodeId id) {
    return id < durables_.size() ? durables_[id].get() : nullptr;
  }

 private:
  friend class ClusterBuilder;
  friend class NodeHandle;
  explicit Cluster(const multishot::MultishotConfig& node_cfg, std::uint64_t seed);

  /// Single CommitSink fanning out to the registered callbacks and waking
  /// wait_for waiters.
  struct Hub final : runtime::CommitSink {
    void on_commit(const runtime::Commit& commit) override;
    std::mutex mx;
    std::condition_variable cv;
    std::vector<CommitCallback> callbacks;
  };

  runtime::LocalRunner runner_;
  std::vector<multishot::MultishotNode*> replicas_;
  std::vector<std::unique_ptr<storage::DurableChain>> durables_;
  Hub hub_;
};

/// A deterministic simulated cluster built from the same configuration
/// (sim::Simulation backend). The facade owns the actor-ordering rules:
/// all protocol nodes are added at build time, clients afterwards.
class SimCluster {
 public:
  [[nodiscard]] sim::Simulation& simulation() noexcept { return *sim_; }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(replicas_.size());
  }
  [[nodiscard]] multishot::MultishotNode& replica(NodeId id) { return *replicas_.at(id); }
  [[nodiscard]] const std::vector<multishot::MultishotNode*>& replicas() const noexcept {
    return replicas_;
  }

  /// Submit a transaction to replica `id`'s mempool (direct call: the
  /// simulation is single-threaded). Returns mempool admission.
  bool submit(NodeId id, std::vector<std::uint8_t> tx) {
    return replicas_.at(id)->submit_tx(std::move(tx));
  }

  /// The workload::SubmitPort view of replica `id` -- hand these to the
  /// load generators (workload::LoadClient and friends), which program
  /// against this boundary instead of MultishotNode internals.
  [[nodiscard]] workload::SubmitPort& port(NodeId id) { return *ports_.at(id); }

  /// Attach a client actor (workload generator, observer). Always legal
  /// here: the builder added every protocol node already, which is the
  /// ordering Simulation::add_node enforces with a clear error.
  NodeId add_client(std::unique_ptr<runtime::ProtocolNode> client) {
    return sim_->add_client(std::move(client));
  }

  void start() { sim_->start(); }

  /// Run until every replica finalized at least `target` slots.
  bool run_until_all_finalized(Slot target, runtime::Duration deadline);

  /// Replica `id`'s durability driver, or nullptr when the cluster was
  /// built without ClusterBuilder::data_dir (fully in-memory).
  [[nodiscard]] storage::DurableChain* durable(NodeId id) {
    return id < durables_.size() ? durables_[id].get() : nullptr;
  }

 private:
  friend class ClusterBuilder;
  SimCluster() = default;

  std::unique_ptr<sim::Simulation> sim_;
  std::vector<multishot::MultishotNode*> replicas_;
  std::vector<std::unique_ptr<storage::DurableChain>> durables_;
  std::vector<std::unique_ptr<workload::SubmitPort>> ports_;
};

/// Configures a TetraBFT cluster: membership (n/f), timing, leader
/// batching, mempool bounds, finalized-storage tail. Validates eagerly --
/// misconfiguration throws std::invalid_argument/std::logic_error with an
/// actionable message at the call, never a silent misbehavior later.
class ClusterBuilder {
 public:
  /// Membership size. f defaults to the largest tolerable (n-1)/3.
  ClusterBuilder& nodes(std::uint32_t n);
  /// Explicit fault budget (0 is legal: no tolerated faults, quorum = n);
  /// must keep n > 3f.
  ClusterBuilder& faults(std::uint32_t f);
  ClusterBuilder& seed(std::uint64_t seed);
  /// Known message-delay bound Delta (drives the 9*Delta view timers).
  ClusterBuilder& delta_bound(runtime::Duration delta);
  /// Leader batching: cap per fresh block, byte budget, and how long an
  /// empty-mempool leader defers a fresh proposal waiting for load.
  ClusterBuilder& batching(std::uint32_t max_txs, std::uint32_t max_bytes,
                           runtime::Duration timeout = 0);
  ClusterBuilder& mempool(std::size_t capacity, multishot::MempoolPolicy policy);
  /// Resident finalized blocks kept behind the compaction checkpoint.
  ClusterBuilder& storage_tail(std::size_t blocks);
  /// Relay submissions to the frontier leader while the chain idles.
  ClusterBuilder& forwarding(bool on);
  /// Simulated actual delay (build_sim only; build_local runs on real time).
  ClusterBuilder& sim_delta_actual(runtime::Duration delta);

  /// Root directory for durable storage. Each replica gets
  /// `<path>/node-<id>` (created on demand): a write-ahead log of finalized
  /// blocks plus an atomic checkpoint file. build_local()/build_sim()
  /// recover whatever state those directories hold before any node starts,
  /// so a rebuilt cluster resumes from its durable tip. Empty (the default)
  /// keeps the cluster fully in-memory.
  ClusterBuilder& data_dir(std::string path);
  /// Enable/disable range-sync catch-up (and with it checkpoint state
  /// transfer). On by default; disabling it relaxes the tail-vs-window
  /// validation in node_config().
  ClusterBuilder& range_sync(bool on);
  /// Rotate exact commit-index entries into per-epoch Bloom filters every
  /// `slots` finalized slots (0 = keep every entry exact). Bounds resident
  /// commit-query memory on long chains.
  ClusterBuilder& commit_epochs(Slot slots);
  /// Durable-checkpoint cadence: write a new checkpoint file (and reclaim
  /// covered WAL segments) every `slots` slots of compaction progress.
  ClusterBuilder& checkpoint_every(Slot slots);
  /// fflush the WAL every `records` appends (1 = flush each block; higher
  /// trades a longer torn tail on crash for less write amplification).
  ClusterBuilder& wal_flush_every(std::uint32_t records);
  /// Rotate to a fresh WAL segment once the active one exceeds `bytes`
  /// (smaller segments reclaim sooner after a checkpoint; larger ones open
  /// fewer files).
  ClusterBuilder& wal_segment_bytes(std::size_t bytes);

  /// The validated MultishotConfig both backends build from.
  [[nodiscard]] multishot::MultishotConfig node_config() const;

  [[nodiscard]] std::unique_ptr<Cluster> build_local() const;
  [[nodiscard]] std::unique_ptr<SimCluster> build_sim() const;

 private:
  std::uint32_t n_{4};
  std::optional<std::uint32_t> f_;  // unset = derive (n-1)/3
  std::uint64_t seed_{1};
  runtime::Duration delta_bound_{50 * runtime::kMillisecond};
  runtime::Duration sim_delta_actual_{1 * runtime::kMillisecond};
  std::uint32_t max_batch_txs_{64};
  std::uint32_t max_batch_bytes_{8192};
  runtime::Duration batch_timeout_{0};
  std::size_t mempool_capacity_{4096};
  multishot::MempoolPolicy mempool_policy_{multishot::MempoolPolicy::kRejectNew};
  std::size_t finalized_tail_{multishot::FinalizedStore::kDefaultTailCapacity};
  bool forward_to_leader_{true};
  std::string data_dir_;  // empty = in-memory only
  bool enable_sync_{true};
  Slot commit_epoch_slots_{0};
  Slot checkpoint_every_{1024};
  std::uint32_t wal_flush_every_{64};
  std::size_t wal_segment_bytes_{storage::DurableOptions{}.segment_bytes};

  /// Build one replica's DurableChain under data_dir_, recover its durable
  /// state into `replica`, and attach the write path.
  std::unique_ptr<storage::DurableChain> attach_durable(
      NodeId id, multishot::MultishotNode& replica) const;
};

}  // namespace tbft
