#pragma once
// Public facade for embedding TetraBFT. Examples, tools and the workload
// engine program against this header instead of reaching into
// MultishotNode internals.
//
//   ClusterBuilder b;
//   b.nodes(4).delta_bound(50 * tbft::runtime::kMillisecond);
//   auto cluster = b.build_local();          // real-time: one thread/node
//   cluster->on_commit([](const tbft::runtime::Commit& c) { ... });
//   cluster->start();
//   cluster->node(0).submit({'t','x'});
//   cluster->wait_for([&]{ return done; }, 5 * tbft::runtime::kSecond);
//   cluster->stop();
//
// Three backends build from the same validated configuration:
//  - build_local(): a runtime::LocalRunner cluster -- wall-clock time, OS
//    threads, shared-memory message passing;
//  - build_sim():   a sim::Simulation cluster -- deterministic virtual
//    time, the verification tool of record. Client actors (workload
//    generators) attach here; the facade adds every protocol node before
//    any client, and the Simulation rejects out-of-order additions with a
//    clear error instead of silently renumbering actors;
//  - build_socket(): a cluster of runtime::SocketHost nodes talking TCP
//    over loopback -- every message crosses a real socket. For genuinely
//    multi-process deployments, build_socket_node() builds ONE node; the
//    caller distributes listen ports (ephemeral binds are discoverable via
//    SocketNode::port()) and wires peers with set_peer_endpoint before
//    start() -- see examples/socket_cluster.cpp.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "multishot/node.hpp"
#include "runtime/host.hpp"
#include "runtime/local_runner.hpp"
#include "runtime/socket_host.hpp"
#include "shard/mux.hpp"
#include "shard/router.hpp"
#include "sim/runtime.hpp"
#include "storage/durable_chain.hpp"
#include "workload/generator.hpp"
#include "workload/request.hpp"

namespace tbft {

class Cluster;

namespace detail {
/// Single CommitSink fanning every backend's commits out to registered
/// callbacks and waking wait_for waiters. Shared by Cluster, SocketCluster
/// and SocketNode so the commit-observation semantics are identical across
/// transports.
struct CommitHub final : runtime::CommitSink {
  void on_commit(const runtime::Commit& commit) override;
  /// Block until `pred()` holds or `timeout` elapses; `pred` runs under the
  /// hub lock and is re-checked after every commit.
  bool wait_for(const std::function<bool()>& pred, runtime::Duration timeout);

  std::mutex mx;
  std::condition_variable cv;
  std::vector<std::function<void(const runtime::Commit&)>> callbacks;
};
}  // namespace detail

/// Non-owning handle to one replica of a local Cluster.
class NodeHandle {
 public:
  [[nodiscard]] NodeId id() const noexcept { return id_; }

  /// Submit a transaction to this replica's mempool. Runs on the replica's
  /// thread (serialized with its handlers); before Cluster::start() it
  /// applies immediately, which is how initial state is seeded.
  void submit(std::vector<std::uint8_t> tx);

 private:
  friend class Cluster;
  NodeHandle(Cluster& cluster, NodeId id) : cluster_(&cluster), id_(id) {}

  Cluster* cluster_;
  NodeId id_;
};

/// A real-time in-process TetraBFT cluster (runtime::LocalRunner backend).
class Cluster {
 public:
  using CommitCallback = std::function<void(const runtime::Commit&)>;

  ~Cluster();  // stops the runner

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] std::uint32_t size() const noexcept { return runner_.node_count(); }
  [[nodiscard]] NodeHandle node(NodeId id);

  /// Subscribe to every commit any replica publishes. Must be called before
  /// start(). Callbacks run on replica threads, serialized by the cluster;
  /// wait_for predicates are re-evaluated after each callback.
  void on_commit(CommitCallback cb);

  void start();
  /// Stop all replica threads. Idempotent; after stop() the replicas are
  /// quiescent and replica() inspection is safe from the caller's thread.
  void stop();

  /// Block until `pred()` holds or `timeout` elapses; `pred` is evaluated
  /// under the cluster's commit lock, re-checked on every commit. Returns
  /// whether the predicate held.
  bool wait_for(const std::function<bool()>& pred, runtime::Duration timeout);

  /// Direct replica access: only safe while the cluster is not running
  /// (before start(), after stop()) -- chain inspection, test assertions.
  [[nodiscard]] multishot::MultishotNode& replica(NodeId id);

  [[nodiscard]] runtime::LocalRunner& runner() noexcept { return runner_; }

  /// Replica `id`'s durability driver, or nullptr when the cluster was
  /// built without ClusterBuilder::data_dir (fully in-memory).
  [[nodiscard]] storage::DurableChain* durable(NodeId id) {
    return id < durables_.size() ? durables_[id].get() : nullptr;
  }

 private:
  friend class ClusterBuilder;
  friend class NodeHandle;
  explicit Cluster(const multishot::MultishotConfig& node_cfg, std::uint64_t seed);

  runtime::LocalRunner runner_;
  std::vector<multishot::MultishotNode*> replicas_;
  std::vector<std::unique_ptr<storage::DurableChain>> durables_;
  detail::CommitHub hub_;
};

/// A deterministic simulated cluster built from the same configuration
/// (sim::Simulation backend). The facade owns the actor-ordering rules:
/// all protocol nodes are added at build time, clients afterwards.
class SimCluster {
 public:
  [[nodiscard]] sim::Simulation& simulation() noexcept { return *sim_; }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(replicas_.size());
  }
  [[nodiscard]] multishot::MultishotNode& replica(NodeId id) { return *replicas_.at(id); }
  [[nodiscard]] const std::vector<multishot::MultishotNode*>& replicas() const noexcept {
    return replicas_;
  }

  /// Submit a transaction to replica `id`'s mempool (direct call: the
  /// simulation is single-threaded). Returns mempool admission.
  bool submit(NodeId id, std::vector<std::uint8_t> tx) {
    return replicas_.at(id)->submit_tx(std::move(tx));
  }

  /// The workload::SubmitPort view of replica `id` -- hand these to the
  /// load generators (workload::LoadClient and friends), which program
  /// against this boundary instead of MultishotNode internals.
  [[nodiscard]] workload::SubmitPort& port(NodeId id) { return *ports_.at(id); }

  /// Attach a client actor (workload generator, observer). Always legal
  /// here: the builder added every protocol node already, which is the
  /// ordering Simulation::add_node enforces with a clear error.
  NodeId add_client(std::unique_ptr<runtime::ProtocolNode> client) {
    return sim_->add_client(std::move(client));
  }

  void start() { sim_->start(); }

  /// Run until every replica finalized at least `target` slots.
  bool run_until_all_finalized(Slot target, runtime::Duration deadline);

  /// Replica `id`'s durability driver, or nullptr when the cluster was
  /// built without ClusterBuilder::data_dir (fully in-memory).
  [[nodiscard]] storage::DurableChain* durable(NodeId id) {
    return id < durables_.size() ? durables_[id].get() : nullptr;
  }

 private:
  friend class ClusterBuilder;
  SimCluster() = default;

  std::unique_ptr<sim::Simulation> sim_;
  std::vector<multishot::MultishotNode*> replicas_;
  std::vector<std::unique_ptr<storage::DurableChain>> durables_;
  std::vector<std::unique_ptr<workload::SubmitPort>> ports_;
};

class ShardedCluster;

/// Non-owning handle to one replica of a ShardedCluster. submit() routes by
/// the request's key: the tag's home shard (shard::ShardRouter) picks which
/// of the replica's S chain instances admits it.
class ShardedNode {
 public:
  [[nodiscard]] NodeId id() const noexcept { return id_; }

  /// Submit a transaction through this replica's key router, onto the tag's
  /// home-shard instance. Runs on the replica's thread; before
  /// ShardedCluster::start() it applies immediately (initial-state seeding).
  void submit(std::vector<std::uint8_t> tx);

 private:
  friend class ShardedCluster;
  ShardedNode(ShardedCluster& cluster, NodeId id) : cluster_(&cluster), id_(id) {}

  ShardedCluster* cluster_;
  NodeId id_;
};

/// A real-time sharded cluster: n replica threads (runtime::LocalRunner),
/// each running one shard::ShardMux of S independent TetraBFT chain
/// instances over the shared transport. Commits surface on the composite
/// stream `(shard << 48) | slot` (shard/router.hpp); submissions route by
/// request key. Built by ClusterBuilder::shards(S) + build_sharded_local().
class ShardedCluster {
 public:
  using CommitCallback = std::function<void(const runtime::Commit&)>;

  ~ShardedCluster();  // stops the runner

  ShardedCluster(const ShardedCluster&) = delete;
  ShardedCluster& operator=(const ShardedCluster&) = delete;

  [[nodiscard]] std::uint32_t size() const noexcept { return runner_.node_count(); }
  [[nodiscard]] std::uint32_t shards() const noexcept { return router_.shards(); }
  [[nodiscard]] const shard::ShardRouter& router() const noexcept { return router_; }
  [[nodiscard]] ShardedNode node(NodeId id);

  /// Subscribe to every commit any instance of any replica publishes
  /// (Commit::stream carries both coordinates; decompose with
  /// shard::stream_shard / shard::stream_slot). Before start() only.
  void on_commit(CommitCallback cb);

  void start();
  /// Stop all replica threads. Idempotent; afterwards instance() inspection
  /// is safe from the caller's thread.
  void stop();

  /// Block until `pred()` holds or `timeout` elapses (re-checked on every
  /// commit, under the cluster's commit lock).
  bool wait_for(const std::function<bool()>& pred, runtime::Duration timeout);

  /// Direct access to replica `id`'s instance of `shard`: only safe while
  /// the cluster is not running (chain inspection, test assertions).
  [[nodiscard]] multishot::MultishotNode& instance(NodeId id, std::uint32_t shard);
  /// Every replica's instance of `shard` (for chains_prefix_consistent).
  /// Same not-running rule as instance().
  [[nodiscard]] std::vector<multishot::MultishotNode*> shard_instances(std::uint32_t shard);

  [[nodiscard]] runtime::LocalRunner& runner() noexcept { return runner_; }

  /// The durability driver of replica `id`'s instance of `shard`, or
  /// nullptr when built without ClusterBuilder::data_dir.
  [[nodiscard]] storage::DurableChain* durable(NodeId id, std::uint32_t shard) {
    return id < durables_.size() && shard < durables_[id].size()
               ? durables_[id][shard].get()
               : nullptr;
  }

 private:
  friend class ClusterBuilder;
  friend class ShardedNode;
  ShardedCluster(std::uint32_t shards, std::uint64_t seed);

  runtime::LocalRunner runner_;
  shard::ShardRouter router_;
  std::vector<shard::ShardMux*> muxes_;
  std::vector<std::vector<std::unique_ptr<storage::DurableChain>>> durables_;  // [node][shard]
  detail::CommitHub hub_;
};

/// The deterministic sharded cluster (sim::Simulation backend): same mux
/// topology as ShardedCluster, same key routing, virtual time. port(id)
/// exposes each replica as a routing workload::SubmitPort, so the load
/// generators drive a sharded cluster exactly as they drive a single chain
/// -- client retries walk replicas while a tag's home shard stays fixed.
class ShardedSimCluster {
 public:
  [[nodiscard]] sim::Simulation& simulation() noexcept { return *sim_; }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(muxes_.size());
  }
  [[nodiscard]] std::uint32_t shards() const noexcept { return router_.shards(); }
  [[nodiscard]] const shard::ShardRouter& router() const noexcept { return router_; }

  [[nodiscard]] multishot::MultishotNode& instance(NodeId id, std::uint32_t shard) {
    return muxes_.at(id)->instance(shard);
  }
  /// Every replica's instance of `shard` (for chains_prefix_consistent and
  /// tracker observation).
  [[nodiscard]] std::vector<multishot::MultishotNode*> shard_instances(std::uint32_t shard) {
    std::vector<multishot::MultishotNode*> out;
    out.reserve(muxes_.size());
    for (auto* mux : muxes_) out.push_back(&mux->instance(shard));
    return out;
  }

  /// Submit a transaction at replica `id`; the tag's home shard admits it.
  bool submit(NodeId id, std::vector<std::uint8_t> tx) {
    const auto tag = workload::parse_request_tag(tx);
    const std::uint32_t shard = tag ? router_.shard_of(*tag) : 0;
    return muxes_.at(id)->submit(shard, std::move(tx));
  }

  /// The key-routing workload::SubmitPort view of replica `id`.
  [[nodiscard]] workload::SubmitPort& port(NodeId id) { return *ports_.at(id); }

  /// Attach a client actor. Always legal: the builder added every protocol
  /// node (mux) already.
  NodeId add_client(std::unique_ptr<runtime::ProtocolNode> client) {
    return sim_->add_client(std::move(client));
  }

  void start() { sim_->start(); }

  /// Run until every instance of every shard finalized >= `target` slots.
  bool run_until_all_finalized(Slot target, runtime::Duration deadline);

  /// The durability driver of replica `id`'s instance of `shard`, or
  /// nullptr when built without ClusterBuilder::data_dir.
  [[nodiscard]] storage::DurableChain* durable(NodeId id, std::uint32_t shard) {
    return id < durables_.size() && shard < durables_[id].size()
               ? durables_[id][shard].get()
               : nullptr;
  }

 private:
  friend class ClusterBuilder;
  explicit ShardedSimCluster(std::uint32_t shards) : router_(shards) {}

  std::unique_ptr<sim::Simulation> sim_;
  shard::ShardRouter router_;
  std::vector<shard::ShardMux*> muxes_;
  std::vector<std::unique_ptr<workload::SubmitPort>> ports_;
  std::vector<std::vector<std::unique_ptr<storage::DurableChain>>> durables_;  // [node][shard]
};

/// An in-process TetraBFT cluster whose nodes talk TCP over loopback: n
/// runtime::SocketHost instances, each with its own node + IO thread pair,
/// wired together on ephemeral ports at build time (race-free under CI --
/// nothing guesses a free port). Every protocol message crosses a real
/// socket through the length-prefixed frame codec; only the process
/// boundary separates this from a deployed cluster, and
/// ClusterBuilder::build_socket_node() removes that too.
class SocketCluster {
 public:
  using CommitCallback = std::function<void(const runtime::Commit&)>;

  ~SocketCluster();  // stops all hosts

  SocketCluster(const SocketCluster&) = delete;
  SocketCluster& operator=(const SocketCluster&) = delete;

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(hosts_.size());
  }

  /// Subscribe to every commit any node publishes. Before start() only;
  /// callbacks run on node threads, serialized by the hub lock.
  void on_commit(CommitCallback cb);

  void start();
  /// Stop all hosts (node + IO threads). Idempotent; afterwards replica()
  /// inspection is safe from the caller's thread.
  void stop();

  /// Block until `pred()` holds or `timeout` elapses (re-checked on every
  /// commit, under the hub lock).
  bool wait_for(const std::function<bool()>& pred, runtime::Duration timeout);

  /// Submit a transaction to replica `id`'s mempool on its own thread;
  /// before start() it applies immediately (initial-state seeding).
  void submit(NodeId id, std::vector<std::uint8_t> tx);

  /// Direct replica access: only safe while the cluster is not running.
  [[nodiscard]] multishot::MultishotNode& replica(NodeId id);

  [[nodiscard]] runtime::SocketHost& host(NodeId id) { return *hosts_.at(id); }

  /// Replica `id`'s durability driver, or nullptr without data_dir.
  [[nodiscard]] storage::DurableChain* durable(NodeId id) {
    return id < durables_.size() ? durables_[id].get() : nullptr;
  }

 private:
  friend class ClusterBuilder;
  SocketCluster() = default;

  std::vector<std::unique_ptr<runtime::SocketHost>> hosts_;
  std::vector<multishot::MultishotNode*> replicas_;
  std::vector<std::unique_ptr<storage::DurableChain>> durables_;
  detail::CommitHub hub_;
  bool running_{false};
};

/// ONE node of a multi-process TetraBFT cluster (runtime::SocketHost
/// backend). The process that owns it must distribute listen addresses out
/// of band -- bind an ephemeral port, read it back with port(), exchange,
/// then set_peer_endpoint for every peer before start(). The commit
/// callbacks observe only this node's finalizations; cross-node agreement
/// is checked by comparing chains (examples/socket_cluster.cpp).
class SocketNode {
 public:
  using CommitCallback = std::function<void(const runtime::Commit&)>;

  ~SocketNode();  // stops the host

  SocketNode(const SocketNode&) = delete;
  SocketNode& operator=(const SocketNode&) = delete;

  [[nodiscard]] NodeId id() const noexcept { return host_->id(); }
  /// The actually bound listen port (resolves ephemeral binds).
  [[nodiscard]] std::uint16_t port() const noexcept { return host_->port(); }

  /// Where peer `peer` listens. Before start() only.
  void set_peer_endpoint(NodeId peer, net::Endpoint ep) {
    host_->set_peer_endpoint(peer, std::move(ep));
  }

  /// Subscribe to this node's commits. Before start() only.
  void on_commit(CommitCallback cb);

  void start();
  void stop();  // idempotent; flushes durable state

  bool wait_for(const std::function<bool()>& pred, runtime::Duration timeout);

  /// Submit a transaction to this replica's mempool on its own thread;
  /// before start() it applies immediately.
  void submit(std::vector<std::uint8_t> tx);

  /// Direct replica access: only safe while the node is not running.
  [[nodiscard]] multishot::MultishotNode& replica();

  [[nodiscard]] runtime::SocketHost& host() noexcept { return *host_; }

  /// This replica's durability driver, or nullptr without data_dir.
  [[nodiscard]] storage::DurableChain* durable() { return durable_.get(); }

 private:
  friend class ClusterBuilder;
  SocketNode() = default;

  std::unique_ptr<runtime::SocketHost> host_;
  multishot::MultishotNode* replica_{nullptr};
  std::unique_ptr<storage::DurableChain> durable_;
  detail::CommitHub hub_;
  bool running_{false};
};

/// Configures a TetraBFT cluster: membership (n/f), timing, leader
/// batching, mempool bounds, finalized-storage tail. Validates eagerly --
/// misconfiguration throws std::invalid_argument/std::logic_error with an
/// actionable message at the call, never a silent misbehavior later.
class ClusterBuilder {
 public:
  /// Membership size. f defaults to the largest tolerable (n-1)/3.
  ClusterBuilder& nodes(std::uint32_t n);
  /// Explicit fault budget (0 is legal: no tolerated faults, quorum = n);
  /// must keep n > 3f.
  ClusterBuilder& faults(std::uint32_t f);
  /// Shard count S: every replica runs S independent chain instances over
  /// the shared transport (shard::ShardMux), with requests key-routed to
  /// their home shard. 1 (the default) builds the classic single-chain
  /// backends; S > 1 requires the sharded builders. Must be in [1, 1024].
  ClusterBuilder& shards(std::uint32_t s);
  ClusterBuilder& seed(std::uint64_t seed);
  /// Known message-delay bound Delta (drives the 9*Delta view timers).
  ClusterBuilder& delta_bound(runtime::Duration delta);
  /// Leader batching: cap per fresh block, byte budget, and how long an
  /// empty-mempool leader defers a fresh proposal waiting for load.
  ClusterBuilder& batching(std::uint32_t max_txs, std::uint32_t max_bytes,
                           runtime::Duration timeout = 0);
  /// Slot pipelining: a leader may have up to `depth` consecutive led slots
  /// proposed before the earliest finalizes (1 = classic one-at-a-time, and
  /// byte-identical to it). Must be in [1, 16].
  ClusterBuilder& pipelining(std::uint32_t depth);
  /// Adaptive batching: under mempool backlog the per-proposal caps grow
  /// toward `max_txs` transactions (byte budget scales in proportion).
  /// Values <= the batching() tx cap disable adaptation (the default).
  ClusterBuilder& adaptive_batching(std::uint32_t max_txs);
  ClusterBuilder& mempool(std::size_t capacity, multishot::MempoolPolicy policy);
  /// Resident finalized blocks kept behind the compaction checkpoint.
  ClusterBuilder& storage_tail(std::size_t blocks);
  /// Relay submissions to the frontier leader while the chain idles.
  ClusterBuilder& forwarding(bool on);
  /// Simulated actual delay (build_sim only; build_local runs on real time).
  ClusterBuilder& sim_delta_actual(runtime::Duration delta);

  /// Root directory for durable storage. Each replica gets
  /// `<path>/node-<id>` (created on demand): a write-ahead log of finalized
  /// blocks plus an atomic checkpoint file. build_local()/build_sim()
  /// recover whatever state those directories hold before any node starts,
  /// so a rebuilt cluster resumes from its durable tip. Empty (the default)
  /// keeps the cluster fully in-memory.
  ClusterBuilder& data_dir(std::string path);
  /// Enable/disable range-sync catch-up (and with it checkpoint state
  /// transfer). On by default; disabling it relaxes the tail-vs-window
  /// validation in node_config().
  ClusterBuilder& range_sync(bool on);
  /// Rotate exact commit-index entries into per-epoch Bloom filters every
  /// `slots` finalized slots (0 = keep every entry exact). Bounds resident
  /// commit-query memory on long chains.
  ClusterBuilder& commit_epochs(Slot slots);
  /// Durable-checkpoint cadence: write a new checkpoint file (and reclaim
  /// covered WAL segments) every `slots` slots of compaction progress.
  ClusterBuilder& checkpoint_every(Slot slots);
  /// fflush the WAL every `records` appends (1 = flush each block; higher
  /// trades a longer torn tail on crash for less write amplification).
  ClusterBuilder& wal_flush_every(std::uint32_t records);
  /// Rotate to a fresh WAL segment once the active one exceeds `bytes`
  /// (smaller segments reclaim sooner after a checkpoint; larger ones open
  /// fewer files).
  ClusterBuilder& wal_segment_bytes(std::size_t bytes);

  /// Socket transport: redial backoff after a lost connection (first delay,
  /// exponential, saturating at `cap`), with a seeded mean-preserving
  /// `jitter` fraction spread around each delay (0 = deterministic,
  /// must be <= 1).
  ClusterBuilder& socket_backoff(runtime::Duration base, runtime::Duration cap,
                                 double jitter = 0.1);
  /// Socket transport: send a ping after `ping_after` of rx silence; drop a
  /// connection silent for `drop_after` (half-open detection).
  ClusterBuilder& socket_liveness(runtime::Duration ping_after,
                                  runtime::Duration drop_after);
  /// Socket transport: outbound payloads buffered per peer before newest
  /// are dropped (and counted) -- a dead peer must not grow memory.
  ClusterBuilder& socket_queue(std::size_t max_payloads);
  /// Socket transport: largest accepted rx frame payload. Must exceed the
  /// largest encoded protocol message (batches, range-sync replies).
  ClusterBuilder& socket_max_frame(std::size_t bytes);

  /// The validated MultishotConfig every backend builds from.
  [[nodiscard]] multishot::MultishotConfig node_config() const;

  [[nodiscard]] std::unique_ptr<Cluster> build_local() const;
  [[nodiscard]] std::unique_ptr<SimCluster> build_sim() const;
  /// The sharded real-time cluster: n replica threads x S chain instances.
  /// Legal at any shards() value (S = 1 is one mux-wrapped chain).
  [[nodiscard]] std::unique_ptr<ShardedCluster> build_sharded_local() const;
  /// The sharded deterministic cluster (sim::Simulation backend).
  [[nodiscard]] std::unique_ptr<ShardedSimCluster> build_sharded_sim() const;
  /// An in-process loopback-TCP cluster: n SocketHosts on ephemeral ports,
  /// fully wired and ready to start().
  [[nodiscard]] std::unique_ptr<SocketCluster> build_socket() const;
  /// One node of a multi-process cluster, listening on `listen` (port 0 =
  /// ephemeral; read it back with SocketNode::port()). Peer endpoints must
  /// be wired with set_peer_endpoint before start(). With data_dir, this
  /// node recovers from and persists to `<data_dir>/node-<id>`.
  [[nodiscard]] std::unique_ptr<SocketNode> build_socket_node(
      NodeId id, net::Endpoint listen = {}) const;

 private:
  std::uint32_t n_{4};
  std::optional<std::uint32_t> f_;  // unset = derive (n-1)/3
  std::uint32_t shards_{1};
  std::uint64_t seed_{1};
  runtime::Duration delta_bound_{50 * runtime::kMillisecond};
  runtime::Duration sim_delta_actual_{1 * runtime::kMillisecond};
  std::uint32_t max_batch_txs_{64};
  std::uint32_t max_batch_bytes_{8192};
  runtime::Duration batch_timeout_{0};
  std::uint32_t pipeline_depth_{1};
  std::uint32_t adaptive_batch_txs_{0};  // <= max_batch_txs_ = off
  std::size_t mempool_capacity_{4096};
  multishot::MempoolPolicy mempool_policy_{multishot::MempoolPolicy::kRejectNew};
  std::size_t finalized_tail_{multishot::FinalizedStore::kDefaultTailCapacity};
  bool forward_to_leader_{true};
  std::string data_dir_;  // empty = in-memory only
  bool enable_sync_{true};
  Slot commit_epoch_slots_{0};
  Slot checkpoint_every_{1024};
  std::uint32_t wal_flush_every_{64};
  std::size_t wal_segment_bytes_{storage::DurableOptions{}.segment_bytes};
  runtime::Duration socket_backoff_base_{10 * runtime::kMillisecond};
  runtime::Duration socket_backoff_cap_{1 * runtime::kSecond};
  double socket_backoff_jitter_{0.1};
  runtime::Duration socket_ping_after_{500 * runtime::kMillisecond};
  runtime::Duration socket_drop_after_{2 * runtime::kSecond};
  std::size_t socket_queue_{4096};
  std::size_t socket_max_frame_{1u << 20};

  /// The validated SocketHostConfig for node `id` (peers unwired).
  [[nodiscard]] runtime::SocketHostConfig socket_host_config(
      NodeId id, net::Endpoint listen) const;

  /// Build one replica's DurableChain under data_dir_, recover its durable
  /// state into `replica`, and attach the write path.
  std::unique_ptr<storage::DurableChain> attach_durable(
      NodeId id, multishot::MultishotNode& replica) const;
  /// Same, rooted at an explicit directory (sharded layouts use
  /// `<data_dir>/node-<id>/shard-<k>`).
  std::unique_ptr<storage::DurableChain> attach_durable_at(
      const std::string& dir, multishot::MultishotNode& replica) const;
  /// One replica's S chain instances, durables attached (sharded builders).
  std::vector<std::unique_ptr<multishot::MultishotNode>> make_shard_instances(
      NodeId id, const multishot::MultishotConfig& node_cfg,
      std::vector<std::unique_ptr<storage::DurableChain>>& durables) const;
  /// Throws when shards() > 1 (the single-chain builders are per-shard).
  void require_unsharded(const char* builder) const;
};

}  // namespace tbft
