#include "common/serde.hpp"

namespace tbft::serde {

std::uint64_t Reader::varint() {
  if (!ok_) return 0;
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= data_.size() || shift >= 64) {
      ok_ = false;
      return 0;
    }
    const std::uint8_t b = data_[pos_++];
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

std::vector<std::uint8_t> Reader::bytes() {
  const auto view = bytes_view();
  return {view.begin(), view.end()};
}

std::span<const std::uint8_t> Reader::bytes_view() {
  const std::uint64_t len = varint();
  if (!ok_ || data_.size() - pos_ < len) {
    ok_ = false;
    return {};
  }
  const auto out = data_.subspan(pos_, len);
  pos_ += len;
  return out;
}

std::string Reader::str() {
  const std::uint64_t len = varint();
  if (!ok_ || data_.size() - pos_ < len) {
    ok_ = false;
    return {};
  }
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return out;
}

}  // namespace tbft::serde
