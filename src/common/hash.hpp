#pragma once
// Non-cryptographic hashing. The unauthenticated model requires no
// signatures or cryptographic hashes; chain "hash pointers" in the multi-shot
// protocol only need to be collision-free among the values that actually
// occur in a run, which a 64-bit mix provides for simulation purposes.

#include <cstdint>
#include <span>
#include <string_view>

#include "common/rng.hpp"

namespace tbft {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t fnv1a64(std::span<const std::uint8_t> data,
                                std::uint64_t seed = kFnvOffset) noexcept {
  std::uint64_t h = seed;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a64(std::string_view s, std::uint64_t seed = kFnvOffset) noexcept {
  std::uint64_t h = seed;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Order-dependent combination of two 64-bit hashes.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9E3779B97f4A7C15ULL + (a << 6) + (a >> 2)));
}

}  // namespace tbft
