#pragma once
// Immutable, ref-counted message payload -- the unit of zero-copy messaging.
//
// A Payload is created exactly once per logical send (by freezing a scratch
// serde::Writer, or by adopting an already-built byte vector) and is then
// shared by every queue slot, envelope and receiver that needs it: copying a
// Payload bumps a reference count, never the bytes. An n-way broadcast
// therefore performs one encode and zero payload buffer copies
// (DESIGN_PERF.md).
//
// A Payload may carry a *decode cache*: the sender attaches the typed,
// already-decoded message object next to the bytes so honest-path receivers
// skip re-parsing. The cache is only ever attached at the site that encoded
// those exact bytes (see encode rules in core/messages.hpp and
// multishot/messages.hpp), so bytes and cache cannot disagree. Receivers of
// point-to-point or hand-crafted (Byzantine test double) payloads see no
// cache and take the total-decode path.
//
// ---- Thread-safety contract (the LocalRunner runs one thread per node) ----
//
//  - The reference count is atomic: distinct Payload handles to the same
//    buffer may be copied/moved/destroyed concurrently from different
//    threads. (One *handle* is still single-owner: two threads may not
//    mutate the same Payload object without external synchronization --
//    the usual shared_ptr rule.)
//  - Bytes and the decode cache are write-once-before-publish: they are
//    written by the creating thread only, before the payload is handed to
//    any other thread, and are immutable afterwards. Publication (pushing
//    into a sim event queue or a LocalRunner mailbox, both under a mutex)
//    provides the happens-before edge, so receivers read bytes() and
//    cached<M>() without synchronization. attach_decoded on a payload that
//    another thread can already see is a contract violation.
//  - Stats counters are relaxed atomics: totals are exact, cross-counter
//    snapshots are not ordered. The single-threaded simulation pays one
//    uncontended atomic op per counter bump, which bench_hotpath's
//    invariants comfortably absorb.
//
// Counters in Payload::stats() feed bench_hotpath's copy/alloc assertions.

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <typeinfo>
#include <utility>
#include <variant>
#include <vector>

#include "common/serde.hpp"

namespace tbft {

class Payload {
 public:
  /// Global accounting. Relaxed atomics: exact totals, safe under the
  /// threaded runner; no ordering between counters is implied.
  struct Stats {
    std::atomic<std::uint64_t> frozen{0};         // payloads created from a scratch Writer
    std::atomic<std::uint64_t> adopted{0};        // payloads that adopted a byte vector
    std::atomic<std::uint64_t> buffer_copies{0};  // deep byte-buffer duplications (hot path: 0)
    std::atomic<std::uint64_t> caches_attached{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> cache_misses{0};

    void reset() noexcept {
      frozen.store(0, std::memory_order_relaxed);
      adopted.store(0, std::memory_order_relaxed);
      buffer_copies.store(0, std::memory_order_relaxed);
      caches_attached.store(0, std::memory_order_relaxed);
      cache_hits.store(0, std::memory_order_relaxed);
      cache_misses.store(0, std::memory_order_relaxed);
    }
  };
  static Stats& stats() noexcept {
    static Stats s;
    return s;
  }

  Payload() = default;

  /// Adopt an already-built buffer (no byte copy). Implicit on purpose:
  /// legacy `ctx().broadcast(w.take())` call sites keep working and stay
  /// zero-copy.
  Payload(std::vector<std::uint8_t> bytes)  // NOLINT(google-explicit-constructor)
      : rep_(new Rep(std::move(bytes))) {
    bump(stats().adopted);
  }

  Payload(std::initializer_list<std::uint8_t> il)
      : Payload(std::vector<std::uint8_t>(il)) {}

  Payload(const Payload& o) noexcept : rep_(o.rep_) {
    if (rep_ != nullptr) rep_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  Payload(Payload&& o) noexcept : rep_(o.rep_) { o.rep_ = nullptr; }
  Payload& operator=(const Payload& o) noexcept {
    if (this != &o) {
      release();
      rep_ = o.rep_;
      if (rep_ != nullptr) rep_->refs.fetch_add(1, std::memory_order_relaxed);
    }
    return *this;
  }
  Payload& operator=(Payload&& o) noexcept {
    if (this != &o) {
      release();
      rep_ = o.rep_;
      o.rep_ = nullptr;
    }
    return *this;
  }
  ~Payload() { release(); }

  /// Freeze the bytes of a reusable scratch writer: one exact-size buffer
  /// copy out of the scratch, after which the writer may be clear()ed and
  /// reused. This is the materialization step of the single encode, not a
  /// payload-to-payload buffer copy.
  static Payload freeze(const serde::Writer& scratch) {
    Payload p;
    const auto bytes = scratch.span();
    p.rep_ = new Rep(std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
    bump(stats().frozen);
    return p;
  }

  /// Deep-copy arbitrary bytes. Counted as a buffer copy; keep off hot paths.
  static Payload copy_of(std::span<const std::uint8_t> bytes) {
    Payload p;
    p.rep_ = new Rep(std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
    bump(stats().buffer_copies);
    return p;
  }

  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return rep_ ? std::span<const std::uint8_t>(rep_->bytes) : std::span<const std::uint8_t>{};
  }
  // NOLINTNEXTLINE(google-explicit-constructor): payloads read as byte spans.
  operator std::span<const std::uint8_t>() const noexcept { return bytes(); }

  [[nodiscard]] const std::uint8_t* data() const noexcept {
    return rep_ ? rep_->bytes.data() : nullptr;
  }
  [[nodiscard]] std::size_t size() const noexcept { return rep_ ? rep_->bytes.size() : 0; }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] std::uint8_t front() const { return rep_->bytes.front(); }
  [[nodiscard]] std::uint8_t operator[](std::size_t i) const { return rep_->bytes[i]; }

  /// Number of owners of the underlying buffer (diagnostics / tests). A
  /// racing snapshot under the threaded runner; exact when quiescent.
  [[nodiscard]] long use_count() const noexcept {
    return rep_ != nullptr ? static_cast<long>(rep_->refs.load(std::memory_order_relaxed)) : 0;
  }

  /// Attach the sender-side decoded form of these bytes. Only legal at the
  /// site that encoded the payload (bytes and cache must agree by
  /// construction), *before* the payload is published to any other thread
  /// (write-once-before-publish, see the header contract) -- deliberately
  /// non-const, so receivers holding the `const Payload&` from on_message
  /// cannot poison the shared cache.
  template <class M>
  void attach_decoded(M msg) {
    if (rep_ == nullptr) return;
    rep_->cache = std::make_shared<const M>(std::move(msg));
    rep_->cache_type = &typeid(M);
    bump(stats().caches_attached);
  }

  /// Tag this payload with a routing key (shard index) before publishing.
  /// Same write-once-before-publish contract as attach_decoded: set by the
  /// creating thread only, before any other thread can see the payload, and
  /// immutable afterwards. Deliberately non-const for the same reason.
  void set_route(std::uint32_t route) noexcept {
    if (rep_ != nullptr) rep_->route = route;
  }

  /// The routing key attached at the sending site, 0 if never tagged.
  [[nodiscard]] std::uint32_t route() const noexcept { return rep_ ? rep_->route : 0; }

  /// The decode cache, if a cache of exactly type M is attached.
  template <class M>
  [[nodiscard]] const M* cached() const noexcept {
    if (rep_ && rep_->cache_type != nullptr && *rep_->cache_type == typeid(M)) {
      bump(stats().cache_hits);
      return static_cast<const M*>(rep_->cache.get());
    }
    bump(stats().cache_misses);
    return nullptr;
  }

 private:
  static void bump(std::atomic<std::uint64_t>& counter) noexcept {
    counter.fetch_add(1, std::memory_order_relaxed);
  }

  // Intrusive atomic refcount. Increments are relaxed (an existing owner
  // keeps the buffer alive while the count is bumped); the decrement is
  // acq_rel so the final owner's delete observes every other thread's last
  // use -- the shared_ptr discipline.
  struct Rep {
    explicit Rep(std::vector<std::uint8_t> b) : bytes(std::move(b)) {}
    std::atomic<std::uint32_t> refs{1};
    std::vector<std::uint8_t> bytes;
    // Decode cache (type-erased so common/ does not depend on protocol
    // message types). Attached once, sender-side, before the payload is
    // published (see the thread-safety contract above).
    std::shared_ptr<const void> cache;
    const std::type_info* cache_type{nullptr};
    // Routing key (shard index) for multiplexed hosts. Write-once,
    // sender-side, before publication (see set_route); 0 = untagged.
    std::uint32_t route{0};
  };

  void release() noexcept {
    if (rep_ != nullptr && rep_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete rep_;
    }
    rep_ = nullptr;
  }

  Rep* rep_{nullptr};
};

/// The zero-copy encode protocol shared by every message family
/// (core::Message, multishot::MsMessage, ...): serialize into the reusable
/// scratch writer, freeze once, and -- on the broadcast path only -- attach
/// the decoded form beside the bytes so receivers skip re-parsing. Named
/// wrappers (core::encode_payload, multishot::encode_ms_payload) delegate
/// here so the freeze/cache rules cannot diverge between protocols.
template <class MessageVariant>
Payload encode_to_payload(const MessageVariant& m, serde::Writer& scratch, bool cache_decoded) {
  scratch.clear();
  std::visit([&scratch](const auto& msg) { msg.encode(scratch); }, m);
  Payload p = Payload::freeze(scratch);
  if (cache_decoded) p.attach_decoded(m);
  return p;
}

}  // namespace tbft
