#pragma once
// Core identifier and quorum-arithmetic types shared by every protocol in the
// repository. TetraBFT (and the baselines) operate in the classic n > 3f
// Byzantine setting with quorums of size n-f and blocking sets of size f+1.

#include <cstdint>
#include <functional>
#include <ostream>
#include <stdexcept>
#include <string>

namespace tbft {

/// Identifies a node. Channels are authenticated, so the simulator guarantees
/// that the receiver learns the true NodeId of the sender of every message
/// (but nothing is transferable: a node cannot prove to a third party what it
/// received -- the unauthenticated model of the paper).
using NodeId = std::uint32_t;

/// A view (a.k.a. round) number. kNoView (-1) denotes "no view yet"; it is
/// also used as the view of an absent vote so that absent votes compare below
/// every real view.
using View = std::int64_t;
inline constexpr View kNoView = -1;

/// A slot number in multi-shot consensus (position in the chain). Slot 0 is
/// the genesis block.
using Slot = std::uint64_t;

/// A consensus value. In single-shot consensus this is an opaque 64-bit
/// identifier (the paper's "val"); in multi-shot consensus it is the hash of
/// a block. kNoValue denotes "no value" in optional contexts.
struct Value {
  std::uint64_t id{0};

  friend constexpr bool operator==(Value a, Value b) noexcept { return a.id == b.id; }
  friend constexpr bool operator!=(Value a, Value b) noexcept { return a.id != b.id; }
  friend constexpr bool operator<(Value a, Value b) noexcept { return a.id < b.id; }
};
inline constexpr Value kNoValue{0};

inline std::ostream& operator<<(std::ostream& os, Value v) { return os << "val:" << v.id; }

/// Quorum arithmetic for the n > 3f setting.
///
/// - quorum: any set of >= n-f nodes (two quorums intersect in a
///   well-behaved node when n > 3f);
/// - blocking set: any set of >= f+1 nodes (contains at least one
///   well-behaved node).
class QuorumParams {
 public:
  QuorumParams(std::uint32_t n, std::uint32_t f) : n_(n), f_(f) {
    if (n == 0 || 3 * static_cast<std::uint64_t>(f) >= n) {
      throw std::invalid_argument("QuorumParams requires n > 3f, got n=" + std::to_string(n) +
                                  " f=" + std::to_string(f));
    }
  }

  /// Largest f such that n > 3f.
  static QuorumParams max_faults(std::uint32_t n) { return {n, (n - 1) / 3}; }

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t f() const noexcept { return f_; }
  [[nodiscard]] std::uint32_t quorum_size() const noexcept { return n_ - f_; }
  [[nodiscard]] std::uint32_t blocking_size() const noexcept { return f_ + 1; }

  [[nodiscard]] bool is_quorum(std::size_t count) const noexcept { return count >= quorum_size(); }
  [[nodiscard]] bool is_blocking(std::size_t count) const noexcept {
    return count >= blocking_size();
  }

 private:
  std::uint32_t n_;
  std::uint32_t f_;
};

}  // namespace tbft

template <>
struct std::hash<tbft::Value> {
  std::size_t operator()(tbft::Value v) const noexcept {
    return std::hash<std::uint64_t>{}(v.id);
  }
};
