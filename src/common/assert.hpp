#pragma once
// Internal invariant checks. These guard programmer errors (broken protocol
// invariants), not untrusted input: malformed network input is handled via
// serde failure paths, never via assertions.

#include <sstream>
#include <stdexcept>
#include <string>

namespace tbft {

class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "invariant violation: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " (" << msg << ")";
  throw InvariantViolation(os.str());
}
}  // namespace detail

}  // namespace tbft

#define TBFT_ASSERT(expr)                                              \
  do {                                                                 \
    if (!(expr)) ::tbft::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define TBFT_ASSERT_MSG(expr, msg)                                          \
  do {                                                                      \
    if (!(expr)) ::tbft::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
