#pragma once
// Deterministic pseudo-random number generation for reproducible simulation.
// xoshiro256** seeded via SplitMix64; every experiment takes an explicit seed
// so that any run (including failing property-test cases) can be replayed.

#include <cstdint>
#include <limits>

#include "common/assert.hpp"

namespace tbft {

/// SplitMix64: used for seeding and for cheap stateless mixing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// One-shot mix of a 64-bit value (stateless hash finalizer).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
    TBFT_ASSERT(lo <= hi);
    const std::uint64_t range = hi - lo;
    if (range == std::numeric_limits<std::uint64_t>::max()) return next();
    // Unbiased rejection sampling (Lemire-style threshold).
    const std::uint64_t span = range + 1;
    const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                                std::numeric_limits<std::uint64_t>::max() % span;
    std::uint64_t x = next();
    while (x >= limit) x = next();
    return lo + x % span;
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Pick a uniformly random index in [0, n).
  std::size_t index(std::size_t n) noexcept {
    TBFT_ASSERT(n > 0);
    return static_cast<std::size_t>(uniform(0, n - 1));
  }

  /// Derive an independent child generator (for per-node streams).
  Rng fork() noexcept { return Rng(next()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace tbft
