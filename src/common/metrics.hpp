#pragma once
// Lightweight metrics used by the simulator and benches: named counters and
// fixed-shape histograms. A MetricsRegistry is owned by a simulation run, so
// concurrent experiments never share state.

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tbft {

class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_{0};
};

/// Streaming summary statistics (count/sum/min/max/mean) plus raw samples for
/// percentile extraction when a bench needs them.
class Histogram {
 public:
  void record(double sample) {
    samples_.push_back(sample);
    sum_ += sample;
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
  }
  [[nodiscard]] double min() const noexcept { return samples_.empty() ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return samples_.empty() ? 0.0 : max_; }
  [[nodiscard]] double percentile(double p) const;

  void reset() noexcept {
    samples_.clear();
    sum_ = 0;
    min_ = 1e300;
    max_ = -1e300;
  }

 private:
  std::vector<double> samples_;
  double sum_{0};
  double min_{1e300};
  double max_{-1e300};
};

class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const noexcept {
    return histograms_;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace tbft
