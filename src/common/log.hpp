#pragma once
// Minimal leveled logger. Logging is off (Warn) by default so benches and
// property sweeps stay quiet; integration tests raise the level to debug
// failing schedules.

#include <iostream>
#include <sstream>
#include <string_view>

namespace tbft {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= static_cast<int>(level_);
  }

  void write(LogLevel level, std::string_view msg);

 private:
  Logger() = default;
  LogLevel level_{LogLevel::Warn};
};

namespace detail {
template <class... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <class... Args>
void log(LogLevel level, Args&&... args) {
  auto& logger = Logger::instance();
  if (!logger.enabled(level)) return;
  logger.write(level, detail::concat(std::forward<Args>(args)...));
}

}  // namespace tbft

#define TBFT_LOG_TRACE(...) ::tbft::log(::tbft::LogLevel::Trace, __VA_ARGS__)
#define TBFT_LOG_DEBUG(...) ::tbft::log(::tbft::LogLevel::Debug, __VA_ARGS__)
#define TBFT_LOG_INFO(...) ::tbft::log(::tbft::LogLevel::Info, __VA_ARGS__)
#define TBFT_LOG_WARN(...) ::tbft::log(::tbft::LogLevel::Warn, __VA_ARGS__)
#define TBFT_LOG_ERROR(...) ::tbft::log(::tbft::LogLevel::Error, __VA_ARGS__)
