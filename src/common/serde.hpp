#pragma once
// Byte-oriented serialization used by every wire message in the repository.
//
// Design notes:
//  - little-endian fixed-width integers plus LEB128 varints;
//  - decoding never throws on malformed input: a Reader carries a sticky
//    failure flag, and decoded values after a failure are zero. Byzantine
//    nodes may send arbitrary bytes, so every decode path must be total.
//  - encoded sizes feed the benches' communicated-bits accounting, so
//    encoders should be reasonably compact (Table 1 reproduction).

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tbft::serde {

class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Unsigned LEB128.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void bytes(std::span<const std::uint8_t> data) {
    varint(data.size());
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void str(std::string_view s) {
    varint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept { return buf_; }
  [[nodiscard]] std::span<const std::uint8_t> span() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

  // --- Scratch-buffer reuse (the zero-copy encode path, DESIGN_PERF.md) ---
  /// Drop the contents but keep the allocation, readying the writer for the
  /// next message. After enough messages the buffer reaches the high-water
  /// mark and encoding stops allocating entirely.
  void clear() noexcept { buf_.clear(); }
  /// Pre-size the underlying buffer (e.g. to a protocol's max message size).
  void reserve(std::size_t n) { buf_.reserve(n); }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.capacity(); }

 private:
  template <class T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return read_le<std::uint8_t>(); }
  std::uint16_t u16() { return read_le<std::uint16_t>(); }
  std::uint32_t u32() { return read_le<std::uint32_t>(); }
  std::uint64_t u64() { return read_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(read_le<std::uint64_t>()); }
  bool boolean() { return u8() != 0; }

  std::uint64_t varint();
  std::vector<std::uint8_t> bytes();
  /// Like bytes(), but a view into the input -- no copy. The span is valid
  /// only while the underlying buffer outlives the Reader's caller.
  std::span<const std::uint8_t> bytes_view();
  std::string str();

  /// True iff no decode error occurred and (optionally) all input consumed.
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] bool done() const noexcept { return ok_ && at_end(); }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }

  void fail() noexcept { ok_ = false; }

 private:
  template <class T>
  T read_le() {
    if (!ok_ || data_.size() - pos_ < sizeof(T)) {
      ok_ = false;
      return T{};
    }
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_{0};
  bool ok_{true};
};

/// Round-trip helper for tests: encode a message and decode it back.
template <class Msg>
std::optional<Msg> roundtrip(const Msg& m) {
  Writer w;
  m.encode(w);
  Reader r(w.data());
  auto out = Msg::decode(r);
  if (!r.done()) return std::nullopt;
  return out;
}

}  // namespace tbft::serde
