#include "common/log.hpp"

namespace tbft {

namespace {
constexpr std::string_view level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view msg) {
  std::clog << "[" << level_name(level) << "] " << msg << '\n';
}

}  // namespace tbft
