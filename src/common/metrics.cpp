#include "common/metrics.hpp"

#include <cmath>

namespace tbft {

double Histogram::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  // Clamp: p outside [0, 100] would index out of range (negative rank floors
  // below zero and wraps on the size_t cast).
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  if (lo == hi) return sorted[lo];
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace tbft
