#pragma once
// LocalRunner: a real-time, in-process Host implementation of the runtime
// API (runtime/host.hpp). One OS thread per node; mutex+condvar mailboxes
// carry the same ref-counted Payloads the simulator moves (zero payload
// copies on an n-way broadcast); timers come off a steady_clock-backed
// per-node timer wheel. The identical ProtocolNode binaries the Simulation
// verifies -- MultishotNode, TetraNode, the baselines -- run here unchanged,
// which is what makes wall-clock (not simulated) throughput measurable and
// is the stepping stone to a socket-backed deployment.
//
// Division of labor: the Simulation stays the verification tool of record
// (deterministic, adversarial, byte-identical traces); the LocalRunner is
// the performance and integration vehicle (real threads, real time, TSan).
//
// Threading model:
//  - every node runs on its own thread; on_start / on_message / on_timer
//    for that node are strictly serialized on it (the Host contract);
//  - send/broadcast lock only the *destination* mailbox; payload buffers
//    are shared across recipients via Payload's atomic refcount, and the
//    mailbox mutex publishes the write-once bytes + decode cache;
//  - self-sends enqueue to the node's own mailbox (handlers never re-enter
//    each other), mirroring the simulator's scheduling semantics;
//  - commits fan out to the registered CommitSinks under one commit mutex,
//    so sinks observe a total order of commits across all nodes;
//  - metrics() and rng() are per-node, so node threads never contend.
//
// post() runs a functor on a node's thread, serialized with its handlers --
// the injection point for client traffic (MultishotNode::submit_tx is not
// thread-safe by design; it must run on the owning thread).

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/payload.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "runtime/host.hpp"
#include "runtime/timer_wheel.hpp"

namespace tbft::runtime {

struct LocalRunnerConfig {
  /// Per-node Rngs are forked from this in NodeId order -- the same
  /// derivation the Simulation uses, so a node's random choices match
  /// across hosts.
  std::uint64_t seed{1};
};

class LocalRunner {
 public:
  explicit LocalRunner(LocalRunnerConfig cfg = {});
  ~LocalRunner();  // stops and joins if still running

  LocalRunner(const LocalRunner&) = delete;
  LocalRunner& operator=(const LocalRunner&) = delete;

  /// Nodes must be added before start() in NodeId order (id = index).
  NodeId add_node(std::unique_ptr<ProtocolNode> node);

  /// Skew `node`'s local clock: everything the node observes through its
  /// Host -- now(), timer expiry -- runs at `real + offset + drift * real`,
  /// a constant offset plus a slow linear drift (e.g. 1e-4 = 100 us/s, ppm
  /// scale in real deployments). The protocol's timeouts are all relative
  /// delays, so consensus must tolerate bounded skew; this knob is how the
  /// threaded runner proves it. Call after add_node, before start().
  /// `drift` must be > -1 (a clock that runs backwards is not a clock), and
  /// the observed clock is floored at 0: a negative offset delays the
  /// clock's start, it never reads before the node's boot.
  void set_clock_skew(NodeId node, Duration offset, double drift = 0.0);

  /// Subscribe to every commit any node publishes. Must be called before
  /// start(). Callbacks run on node threads, serialized by the runner's
  /// commit mutex.
  void add_commit_sink(CommitSink& sink);

  /// Spawn the node threads; each runs its node's on_start() first, then
  /// drains messages and timers until stop().
  void start();

  /// Ask every node thread to stop and join them. Idempotent; pending
  /// mailbox entries are discarded. After stop() the nodes are quiescent
  /// and may be inspected from the caller's thread.
  void stop();

  [[nodiscard]] bool running() const noexcept { return started_ && !stopped_; }
  [[nodiscard]] std::uint32_t node_count() const noexcept {
    return static_cast<std::uint32_t>(nodes_.size());
  }

  /// Run `fn` on `node`'s thread, serialized with its message/timer
  /// handlers (FIFO with deliveries). Before start(), `fn` runs inline on
  /// the caller -- no thread exists yet, which makes pre-start state
  /// seeding (e.g. mempool pre-loading) trivially safe.
  void post(NodeId node, std::function<void()> fn);

  /// Microseconds of steady_clock time since this runner was constructed.
  [[nodiscard]] Time now() const noexcept;

  /// Direct node access. Only safe from the node's own thread (via post)
  /// or while the runner is not running.
  [[nodiscard]] ProtocolNode& node(NodeId id) { return *nodes_.at(id).node; }

  template <class T>
  [[nodiscard]] T& node_as(NodeId id) {
    return dynamic_cast<T&>(*nodes_.at(id).node);
  }

 private:
  class Context;

  struct InboxEntry {
    NodeId src{0};
    Payload payload;                  // deliver entry when call is empty
    std::function<void()> call;       // posted functor otherwise
  };

  struct NodeRt {
    std::unique_ptr<ProtocolNode> node;
    std::unique_ptr<Context> ctx;
    std::unique_ptr<MetricsRegistry> metrics;
    Rng rng{0};

    /// Clock skew (set_clock_skew): the node's observed clock is
    /// real + skew_offset + drift * real. Written before start() only.
    Duration skew_offset{0};
    double drift{0.0};

    std::mutex mx;
    std::condition_variable cv;
    std::vector<InboxEntry> inbox;  // guarded by mx
    bool stopping{false};           // guarded by mx

    /// Per-node timer wheel (runtime/timer_wheel.hpp): owner-thread only --
    /// set/cancel run inside the node's handlers, expiry runs in its loop.
    TimerWheel timers;
    std::thread thread;

    NodeRt() = default;
  };

  /// `rt`'s skewed clock reading, and its inverse (skewed deadline -> real
  /// steady-clock microseconds, for wait_until).
  [[nodiscard]] Time node_now(const NodeRt& rt) const noexcept;
  [[nodiscard]] Time to_real(const NodeRt& rt, Time local) const noexcept;

  void run_node(NodeRt& rt);
  void enqueue(NodeId dst, InboxEntry entry);
  void deliver(NodeId dst, NodeId src, Payload payload);
  void publish_commit(NodeId node, std::uint64_t stream, Value value,
                      std::span<const std::uint8_t> payload);

  LocalRunnerConfig cfg_;
  std::chrono::steady_clock::time_point epoch_;
  Rng root_rng_;
  std::deque<NodeRt> nodes_;  // deque: NodeRt holds a mutex and never moves
  std::vector<CommitSink*> commit_sinks_;
  std::mutex commit_mx_;
  bool started_{false};
  bool stopped_{false};
};

}  // namespace tbft::runtime
