#include "runtime/socket_host.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/assert.hpp"
#include "common/serde.hpp"

namespace tbft::runtime {

namespace {
constexpr NodeId kNoPeer = static_cast<NodeId>(-1);
/// Cap on accepted-but-unidentified connections: strangers who never send a
/// valid hello must not exhaust fds. Oldest is evicted on overflow.
constexpr std::size_t kMaxPendingAccepts = 64;
}  // namespace

// ---- connection state ------------------------------------------------------

/// One TCP connection, owned by the IO thread. Dialed connections know their
/// peer from birth; accepted ones learn it from the hello.
struct SocketHost::Conn {
  net::Fd fd;
  NodeId peer{kNoPeer};
  bool dialed{false};       // we initiated (peer id < ours)
  bool connecting{false};   // non-blocking connect still in flight
  bool hello_sent{false};
  bool hello_received{false};
  bool dead{false};         // marked for sweep at the end of the poll pass

  net::FrameDecoder decoder;

  // Write side: control frames (hello/ping/pong) in a flat byte buffer that
  // always flushes ahead of data, then the current data frame as a shared
  // Payload + header, written with writev straight from the shared bytes.
  std::vector<std::uint8_t> ctrl;
  std::size_t ctrl_off{0};
  Payload cur;
  bool cur_valid{false};
  std::uint8_t cur_header[net::kFrameHeaderBytes]{};
  std::size_t cur_off{0};  // bytes of header+payload already written

  Time last_rx{0};
  bool ping_outstanding{false};
  std::uint64_t unknown_synced{0};  // decoder dropped_unknown already mirrored

  explicit Conn(net::Fd f) : fd(std::move(f)) {}
  [[nodiscard]] bool established() const noexcept {
    return hello_sent && hello_received && !connecting;
  }
};

/// Per-peer outbound queue and redial bookkeeping. The queue is guarded by
/// out_mx_ (node thread pushes, IO thread pops); the rest is IO-thread-only.
struct SocketHost::PeerState {
  std::deque<Payload> queue;  // guarded by out_mx_
  std::size_t dropped{0};     // guarded by out_mx_ (mirrored into stats_)

  Conn* conn{nullptr};        // IO thread: the live connection, if any
  std::uint32_t attempts{0};  // IO thread: consecutive failed dials
  Time next_dial{0};          // IO thread: earliest redial time
};

Duration jittered_backoff(std::uint32_t attempt, Duration base, Duration cap,
                          double jitter_frac, Rng& rng) noexcept {
  const Duration d = backoff_delay(attempt, base, cap);
  if (jitter_frac <= 0 || d <= 0) return d;
  const auto span = static_cast<Duration>(static_cast<double>(d) * jitter_frac);
  if (span <= 0) return d;
  const Duration lo = d - span / 2;
  const auto offset =
      static_cast<Duration>(rng.uniform(0, static_cast<std::uint64_t>(span)));
  return lo + offset;
}

// ---- construction / lifecycle ----------------------------------------------

SocketHost::SocketHost(SocketHostConfig cfg, std::unique_ptr<ProtocolNode> node)
    : cfg_(std::move(cfg)),
      node_(std::move(node)),
      epoch_(std::chrono::steady_clock::now()) {
  TBFT_ASSERT_MSG(cfg_.n >= 1 && cfg_.id < cfg_.n, "bad SocketHostConfig id/n");
  if (cfg_.peers.size() < cfg_.n) cfg_.peers.resize(cfg_.n);

  // Same per-node Rng derivation as Simulation / LocalRunner: fork the root
  // id+1 times, keep the last.
  Rng root(cfg_.seed);
  for (NodeId i = 0; i <= cfg_.id; ++i) rng_ = root.fork();
  // The IO thread's jitter stream is derived from a salted root, NOT forked
  // from rng_: the node's stream must stay identical across all transports.
  Rng io_root(mix64(cfg_.seed) ^ 0x696f'6a69'7474'6572ULL);
  for (NodeId i = 0; i <= cfg_.id; ++i) io_rng_ = io_root.fork();

  std::string err;
  listener_ = net::tcp_listen(cfg_.listen, /*backlog=*/16, err);
  TBFT_ASSERT_MSG(listener_.valid(), "SocketHost: listen failed");
  listen_port_ = net::local_port(listener_.get());

  int pipe_fds[2] = {-1, -1};
  TBFT_ASSERT_MSG(::pipe(pipe_fds) == 0, "SocketHost: pipe failed");
  wake_rd_ = net::Fd(pipe_fds[0]);
  wake_wr_ = net::Fd(pipe_fds[1]);
  net::set_nonblocking(wake_rd_.get());
  net::set_nonblocking(wake_wr_.get());

  peers_.resize(cfg_.n);
  for (auto& p : peers_) p = std::make_unique<PeerState>();

  node_->bind(*this);
}

SocketHost::~SocketHost() { stop(); }

Time SocketHost::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void SocketHost::set_peer_endpoint(NodeId peer, net::Endpoint ep) {
  TBFT_ASSERT_MSG(!started_, "set_peer_endpoint after start()");
  cfg_.peers.at(peer) = std::move(ep);
}

void SocketHost::add_commit_sink(CommitSink& sink) {
  TBFT_ASSERT_MSG(!started_, "register commit sinks before start()");
  commit_sinks_.push_back(&sink);
}

void SocketHost::start() {
  TBFT_ASSERT_MSG(!started_, "start() called twice");
  started_ = true;
  io_thread_ = std::thread([this] { run_io(); });
  node_thread_ = std::thread([this] { run_node(); });
}

void SocketHost::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stop_.store(true);
  {
    std::lock_guard<std::mutex> lk(mx_);
  }
  cv_.notify_all();
  io_wake();
  if (node_thread_.joinable()) node_thread_.join();
  if (io_thread_.joinable()) io_thread_.join();
}

// ---- node side (Host interface + mailbox loop) -----------------------------

void SocketHost::enqueue(InboxEntry entry) {
  {
    std::lock_guard<std::mutex> lk(mx_);
    if (stop_.load(std::memory_order_relaxed)) return;
    inbox_.push_back(std::move(entry));
  }
  cv_.notify_one();
}

void SocketHost::post(std::function<void()> fn) {
  if (!started_) {
    fn();  // no thread yet: caller is the only mutator (pre-start seeding)
    return;
  }
  InboxEntry e;
  e.call = std::move(fn);
  enqueue(std::move(e));
}

void SocketHost::send(NodeId dst, Payload payload) {
  if (dst == cfg_.id) {
    // Self-sends never touch the network: straight to the own mailbox, the
    // same semantics as the Simulation and the LocalRunner.
    InboxEntry e;
    e.src = cfg_.id;
    e.payload = std::move(payload);
    enqueue(std::move(e));
    return;
  }
  if (dst >= cfg_.n) return;
  bool was_empty = false;
  {
    std::lock_guard<std::mutex> lk(out_mx_);
    PeerState& p = *peers_[dst];
    if (p.queue.size() >= cfg_.max_queue) {
      ++p.dropped;
      stats_.queue_dropped.fetch_add(1, std::memory_order_relaxed);
      return;  // bounded queue: drop newest, count, never block the node
    }
    was_empty = p.queue.empty();
    p.queue.push_back(std::move(payload));
  }
  if (was_empty) io_wake();
}

void SocketHost::broadcast(Payload payload) {
  // Refcount bumps only: every peer queue shares the same payload bytes.
  for (NodeId dst = 0; dst < cfg_.n; ++dst) {
    if (dst == cfg_.id) continue;
    send(dst, payload);
  }
  send(cfg_.id, std::move(payload));
}

TimerId SocketHost::set_timer(Duration delay) {
  TBFT_ASSERT(delay >= 0);
  // Owner-thread only: handlers and post()ed functors run on the node
  // thread, the only thread that touches the wheel.
  return timers_.arm(now() + delay);
}

void SocketHost::cancel_timer(TimerId id) { timers_.cancel(id); }

void SocketHost::publish_commit(std::uint64_t stream, Value value,
                                std::span<const std::uint8_t> payload) {
  const Commit commit{cfg_.id, stream, value, payload, now()};
  std::lock_guard<std::mutex> lk(commit_mx_);
  for (CommitSink* sink : commit_sinks_) sink->on_commit(commit);
}

void SocketHost::run_node() {
  node_->on_start();

  std::vector<InboxEntry> batch;
  std::vector<TimerId> fired;
  std::unique_lock<std::mutex> lk(mx_);
  while (!stop_.load(std::memory_order_relaxed)) {
    // Due timers fire before the next message batch (sustained arrival must
    // not starve view timers) -- identical to LocalRunner::run_node.
    const Time next = timers_.next_deadline();
    if (next <= now()) {
      fired.clear();
      timers_.pop_due(now(), fired);
      lk.unlock();
      for (const TimerId id : fired) node_->on_timer(id);
      lk.lock();
      continue;
    }

    if (!inbox_.empty()) {
      batch.swap(inbox_);
      lk.unlock();
      for (InboxEntry& e : batch) {
        if (e.call) {
          e.call();
        } else {
          node_->on_message(e.src, e.payload);
        }
      }
      batch.clear();  // drop payload refs outside the lock
      lk.lock();
      continue;
    }

    const auto woken = [&] {
      return stop_.load(std::memory_order_relaxed) || !inbox_.empty();
    };
    if (next == kNever) {
      cv_.wait(lk, woken);
    } else {
      cv_.wait_until(lk, epoch_ + std::chrono::microseconds(next), woken);
    }
  }
}

// ---- IO thread -------------------------------------------------------------

void SocketHost::io_wake() const noexcept {
  const std::uint8_t b = 1;
  [[maybe_unused]] const auto r = ::write(wake_wr_.get(), &b, 1);
}

void SocketHost::io_queue_ctrl(Conn& c, net::FrameKind kind,
                               std::span<const std::uint8_t> payload) {
  std::uint8_t hdr[net::kFrameHeaderBytes];
  net::put_frame_header(hdr, kind, static_cast<std::uint32_t>(payload.size()));
  c.ctrl.insert(c.ctrl.end(), hdr, hdr + sizeof hdr);
  c.ctrl.insert(c.ctrl.end(), payload.begin(), payload.end());
}

bool SocketHost::io_wants_write(const Conn& c) {
  if (c.connecting) return true;  // connect completion reports as writable
  if (c.ctrl_off < c.ctrl.size() || c.cur_valid) return true;
  if (!c.established() || c.peer == kNoPeer) return false;
  std::lock_guard<std::mutex> lk(out_mx_);
  return !peers_[c.peer]->queue.empty();
}

void SocketHost::io_dial(NodeId peer) {
  PeerState& p = *peers_[peer];
  stats_.dials.fetch_add(1, std::memory_order_relaxed);
  bool in_progress = false;
  std::string err;
  net::Fd fd = net::tcp_dial(cfg_.peers[peer], in_progress, err);
  if (!fd.valid()) {
    ++p.attempts;
    p.next_dial = now() + jittered_backoff(p.attempts, cfg_.backoff_base,
                                           cfg_.backoff_cap, cfg_.backoff_jitter, io_rng_);
    return;
  }
  auto c = std::make_unique<Conn>(std::move(fd));
  c->peer = peer;
  c->dialed = true;
  c->connecting = in_progress;
  c->last_rx = now();
  c->decoder = net::FrameDecoder(net::FrameDecoder::Limits{cfg_.max_frame_bytes});
  if (!in_progress) {
    // Connected immediately (loopback): send our hello now.
    serde::Writer w;
    net::Hello h;
    h.node = cfg_.id;
    h.n = cfg_.n;
    h.encode(w);
    io_queue_ctrl(*c, net::FrameKind::kHello, w.data());
    c->hello_sent = true;
  }
  p.conn = c.get();
  conns_.push_back(std::move(c));
}

void SocketHost::io_accept_pending() {
  for (;;) {
    net::Fd fd = net::tcp_accept(listener_.get());
    if (!fd.valid()) return;
    stats_.accepts.fetch_add(1, std::memory_order_relaxed);
    std::size_t pending = 0;
    Conn* oldest = nullptr;
    for (const auto& c : conns_) {
      if (c->peer == kNoPeer && !c->dead) {
        ++pending;
        if (oldest == nullptr) oldest = c.get();
      }
    }
    if (pending >= kMaxPendingAccepts && oldest != nullptr) {
      // Strangers who never identify themselves must not exhaust fds.
      stats_.rx_junk.fetch_add(1, std::memory_order_relaxed);
      oldest->dead = true;
    }
    auto c = std::make_unique<Conn>(std::move(fd));
    c->last_rx = now();
    c->decoder = net::FrameDecoder(net::FrameDecoder::Limits{cfg_.max_frame_bytes});
    conns_.push_back(std::move(c));  // identity pending: wait for its hello
  }
}

bool SocketHost::io_on_hello(Conn& c, std::vector<std::uint8_t>&& body) {
  serde::Reader r(body);
  const net::Hello h = net::Hello::decode(r);
  const bool shape_ok = r.done() && h.n == cfg_.n && h.node < cfg_.n && h.node != cfg_.id;
  // Direction check: only a higher id dials us, and a dialed peer must
  // identify as the node we dialed.
  const bool direction_ok =
      c.dialed ? (h.node == c.peer) : (shape_ok && h.node > cfg_.id);
  if (!shape_ok || !direction_ok) {
    stats_.rejected_hello.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (c.hello_received) {
    stats_.rx_junk.fetch_add(1, std::memory_order_relaxed);  // duplicate hello
    return true;
  }
  c.hello_received = true;

  if (!c.dialed) {
    c.peer = h.node;
    PeerState& p = *peers_[c.peer];
    if (p.conn != nullptr && p.conn != &c) {
      // The peer restarted and redialed: the old socket is half-open
      // garbage. Replace it.
      io_drop_conn(*p.conn, /*established_loss=*/p.conn->established());
    }
    p.conn = &c;
    // Answer with our own hello.
    serde::Writer w;
    net::Hello mine;
    mine.node = cfg_.id;
    mine.n = cfg_.n;
    mine.encode(w);
    io_queue_ctrl(c, net::FrameKind::kHello, w.data());
    c.hello_sent = true;
  }
  if (c.established()) {
    stats_.handshakes.fetch_add(1, std::memory_order_relaxed);
    peers_[c.peer]->attempts = 0;  // completed handshake resets backoff
  }
  return true;
}

void SocketHost::io_on_frame(Conn& c, net::FrameKind kind,
                             std::vector<std::uint8_t>&& body) {
  switch (kind) {
    case net::FrameKind::kHello:
      if (!io_on_hello(c, std::move(body))) c.dead = true;
      return;
    case net::FrameKind::kPing:
      if (!c.established()) {
        stats_.rx_junk.fetch_add(1, std::memory_order_relaxed);
        c.dead = true;
        return;
      }
      io_queue_ctrl(c, net::FrameKind::kPong);
      return;
    case net::FrameKind::kPong:
      return;  // last_rx already refreshed by the read itself
    case net::FrameKind::kData: {
      if (!c.established()) {
        // Data before the handshake completes is a protocol violation:
        // count it and drop the stranger.
        stats_.rx_junk.fetch_add(1, std::memory_order_relaxed);
        c.dead = true;
        return;
      }
      stats_.frames_rx.fetch_add(1, std::memory_order_relaxed);
      InboxEntry e;
      e.src = c.peer;
      e.payload = Payload(std::move(body));  // adopt: no copy of the frame body
      enqueue(std::move(e));
      return;
    }
  }
}

void SocketHost::io_handle_readable(Conn& c) {
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t got = ::recv(c.fd.get(), buf, sizeof buf, 0);
    if (got > 0) {
      stats_.bytes_rx.fetch_add(static_cast<std::uint64_t>(got),
                                std::memory_order_relaxed);
      c.last_rx = now();
      c.ping_outstanding = false;
      const bool ok = c.decoder.feed(
          std::span<const std::uint8_t>(buf, static_cast<std::size_t>(got)),
          [this, &c](net::FrameKind k, std::vector<std::uint8_t>&& body) {
            io_on_frame(c, k, std::move(body));
          });
      const auto& dc = c.decoder.counters();
      if (dc.dropped_unknown > c.unknown_synced) {
        stats_.rx_unknown.fetch_add(dc.dropped_unknown - c.unknown_synced,
                                    std::memory_order_relaxed);
        c.unknown_synced = dc.dropped_unknown;
      }
      if (!ok) {
        // Poisoned stream (lying length prefix): cannot resync, drop.
        stats_.rx_oversize.fetch_add(1, std::memory_order_relaxed);
        c.dead = true;
        return;
      }
      if (c.dead) return;
      if (static_cast<std::size_t>(got) < sizeof buf) return;  // drained
      continue;
    }
    if (got == 0) {  // orderly close
      c.dead = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    c.dead = true;
    return;
  }
}

void SocketHost::io_handle_writable(Conn& c) {
  if (c.connecting) {
    const int err = net::dial_error(c.fd.get());
    if (err != 0) {
      c.dead = true;
      return;
    }
    c.connecting = false;
    serde::Writer w;
    net::Hello h;
    h.node = cfg_.id;
    h.n = cfg_.n;
    h.encode(w);
    io_queue_ctrl(c, net::FrameKind::kHello, w.data());
    c.hello_sent = true;
  }

  // Control bytes always flush ahead of data (a hello must precede any
  // frame; pings must not starve behind a deep data backlog).
  while (c.ctrl_off < c.ctrl.size()) {
    const ssize_t sent = ::send(c.fd.get(), c.ctrl.data() + c.ctrl_off,
                                c.ctrl.size() - c.ctrl_off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      c.dead = true;
      return;
    }
    stats_.bytes_tx.fetch_add(static_cast<std::uint64_t>(sent),
                              std::memory_order_relaxed);
    c.ctrl_off += static_cast<std::size_t>(sent);
  }
  if (c.ctrl_off == c.ctrl.size() && !c.ctrl.empty()) {
    c.ctrl.clear();
    c.ctrl_off = 0;
  }

  if (!c.established() || c.peer == kNoPeer) return;
  PeerState& p = *peers_[c.peer];
  for (;;) {
    if (!c.cur_valid) {
      std::lock_guard<std::mutex> lk(out_mx_);
      if (p.queue.empty()) return;
      c.cur = std::move(p.queue.front());
      p.queue.pop_front();
      c.cur_valid = true;
      c.cur_off = 0;
      net::put_frame_header(c.cur_header, net::FrameKind::kData,
                            static_cast<std::uint32_t>(c.cur.size()));
    }
    // Gather-write the header remainder + payload remainder straight from
    // the shared payload bytes: zero copies on the tx path. sendmsg, not
    // writev: only a socket send can pass MSG_NOSIGNAL, and a peer that
    // closed first must surface as EPIPE here, not kill the process.
    const auto payload = c.cur.bytes();
    iovec iov[2];
    int iovcnt = 0;
    if (c.cur_off < net::kFrameHeaderBytes) {
      iov[iovcnt].iov_base = c.cur_header + c.cur_off;
      iov[iovcnt].iov_len = net::kFrameHeaderBytes - c.cur_off;
      ++iovcnt;
    }
    const std::size_t payload_off =
        c.cur_off > net::kFrameHeaderBytes ? c.cur_off - net::kFrameHeaderBytes : 0;
    if (payload_off < payload.size()) {
      iov[iovcnt].iov_base =
          const_cast<std::uint8_t*>(payload.data()) + payload_off;
      iov[iovcnt].iov_len = payload.size() - payload_off;
      ++iovcnt;
    }
    ssize_t sent;
    if (iovcnt == 0) {
      sent = 0;  // zero-length payload, header already out
    } else {
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = static_cast<decltype(msg.msg_iovlen)>(iovcnt);
      sent = ::sendmsg(c.fd.get(), &msg, MSG_NOSIGNAL);
      if (sent < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        c.dead = true;
        return;
      }
      stats_.bytes_tx.fetch_add(static_cast<std::uint64_t>(sent),
                                std::memory_order_relaxed);
    }
    c.cur_off += static_cast<std::size_t>(sent);
    if (c.cur_off >= net::kFrameHeaderBytes + payload.size()) {
      stats_.frames_tx.fetch_add(1, std::memory_order_relaxed);
      c.cur = Payload();
      c.cur_valid = false;
    }
  }
}

void SocketHost::io_drop_conn(Conn& c, bool established_loss) {
  if (c.dead && c.fd.get() < 0) return;  // already dropped
  c.dead = true;
  if (established_loss) stats_.conns_dropped.fetch_add(1, std::memory_order_relaxed);
  c.decoder.finish();
  const auto& dc = c.decoder.counters();
  if (dc.dropped_truncated > 0) {
    stats_.rx_truncated.fetch_add(dc.dropped_truncated, std::memory_order_relaxed);
  }
  if (c.peer != kNoPeer) {
    PeerState& p = *peers_[c.peer];
    if (p.conn == &c) {
      p.conn = nullptr;
      if (c.dialed) {
        ++p.attempts;
        p.next_dial = now() + jittered_backoff(p.attempts, cfg_.backoff_base,
                                               cfg_.backoff_cap, cfg_.backoff_jitter,
                                               io_rng_);
      }
    }
    if (c.cur_valid) {
      // The peer cannot have decoded a frame we never finished writing:
      // requeue at the front so the head-of-line message survives the
      // reconnect without duplication.
      std::lock_guard<std::mutex> lk(out_mx_);
      if (p.queue.size() < cfg_.max_queue) {
        p.queue.push_front(std::move(c.cur));
      } else {
        ++p.dropped;
        stats_.queue_dropped.fetch_add(1, std::memory_order_relaxed);
      }
      c.cur = Payload();
      c.cur_valid = false;
    }
  }
  c.fd.reset();
}

void SocketHost::io_check_liveness(Time now_us) {
  for (auto& cp : conns_) {
    Conn& c = *cp;
    if (c.dead || !c.established()) continue;
    const Time silent = now_us - c.last_rx;
    if (silent >= cfg_.drop_after) {
      // Half-open: TCP would keep this ESTABLISHED forever.
      io_drop_conn(c, /*established_loss=*/true);
    } else if (silent >= cfg_.ping_after && !c.ping_outstanding) {
      io_queue_ctrl(c, net::FrameKind::kPing);
      c.ping_outstanding = true;
    }
  }
}

Time SocketHost::io_next_deadline(Time now_us) const {
  Time next = now_us + 100 * kMillisecond;  // liveness sweep floor
  for (NodeId peer = 0; peer < cfg_.id; ++peer) {
    const PeerState& p = *peers_[peer];
    if (p.conn == nullptr) next = std::min(next, p.next_dial);
  }
  for (const auto& cp : conns_) {
    if (cp->dead || !cp->established()) continue;
    next = std::min(next, cp->last_rx + (cp->ping_outstanding ? cfg_.drop_after
                                                              : cfg_.ping_after));
  }
  return std::max(next, now_us + 1 * kMillisecond);
}

void SocketHost::run_io() {
  std::vector<pollfd> pfds;
  std::vector<Conn*> pfd_conns;

  while (!stop_.load(std::memory_order_relaxed)) {
    // Redial lower peers whose backoff has expired (higher id dials lower).
    const Time t = now();
    for (NodeId peer = 0; peer < cfg_.id; ++peer) {
      PeerState& p = *peers_[peer];
      if (p.conn == nullptr && t >= p.next_dial) io_dial(peer);
    }

    pfds.clear();
    pfd_conns.clear();
    pfds.push_back({wake_rd_.get(), POLLIN, 0});
    pfds.push_back({listener_.get(), POLLIN, 0});
    for (auto& cp : conns_) {
      if (cp->dead) continue;
      short ev = cp->connecting ? 0 : POLLIN;
      if (io_wants_write(*cp)) ev |= POLLOUT;
      pfds.push_back({cp->fd.get(), ev, 0});
      pfd_conns.push_back(cp.get());
    }

    const Time deadline = io_next_deadline(t);
    const int timeout_ms =
        static_cast<int>(std::min<Time>((deadline - t) / 1000 + 1, 1000));
    const int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);
    if (rc < 0 && errno != EINTR) break;  // unrecoverable poll failure

    if (rc > 0) {
      if ((pfds[0].revents & POLLIN) != 0) {
        std::uint8_t drain[256];
        while (::read(wake_rd_.get(), drain, sizeof drain) > 0) {
        }
      }
      if ((pfds[1].revents & POLLIN) != 0) io_accept_pending();
      for (std::size_t i = 0; i < pfd_conns.size(); ++i) {
        Conn& c = *pfd_conns[i];
        const short re = pfds[i + 2].revents;
        if (c.dead) continue;
        if ((re & (POLLERR | POLLHUP | POLLNVAL)) != 0 && !c.connecting) {
          // Let the read path consume any final bytes + observe EOF.
          io_handle_readable(c);
          if (!c.dead) io_drop_conn(c, c.established());
          continue;
        }
        if ((re & POLLIN) != 0) io_handle_readable(c);
        if (!c.dead && (re & (POLLOUT | POLLERR | POLLHUP)) != 0) {
          io_handle_writable(c);
        }
      }
    }

    io_check_liveness(now());

    // Sweep: finalize drops (updates backoff + requeue) and erase.
    for (auto& cp : conns_) {
      if (cp->dead) io_drop_conn(*cp, cp->established());
    }
    std::erase_if(conns_, [](const auto& cp) { return cp->dead; });

    // A newly-established conn may have a backlog but no poll event coming
    // (queue filled while we were handshaking): opportunistically flush.
    for (auto& cp : conns_) {
      if (!cp->dead && cp->established() && io_wants_write(*cp)) {
        io_handle_writable(*cp);
        if (cp->dead) io_drop_conn(*cp, true);
      }
    }
    std::erase_if(conns_, [](const auto& cp) { return cp->dead; });
  }

  // Shutdown: close everything; peers observe EOF and count a drop.
  for (auto& cp : conns_) {
    cp->dead = true;
    cp->fd.reset();
  }
  conns_.clear();
}

}  // namespace tbft::runtime
