#pragma once
// SocketHost: a TCP-backed Host (runtime/host.hpp) -- one node of a
// TetraBFT cluster running as its own process (or its own pair of threads
// in-process), speaking the length-prefixed frame protocol of net/frame.hpp
// to n-1 peers named by a static cluster config.
//
// This is the third Host implementation after the Simulation and the
// LocalRunner, and the one that takes the identical ProtocolNode binaries
// out of shared memory: a kData frame's payload is exactly the serde bytes
// a Payload carries in-process, so the consensus cores cannot tell the
// transports apart (tests/test_socket_equivalence.cpp proves it).
//
// Threading model (two threads per host):
//  - the NODE thread owns the ProtocolNode: mailbox + condvar + timer
//    wheel, the same strictly-serialized handler loop as the LocalRunner's
//    run_node. metrics() and rng() are only touched here.
//  - the IO thread owns every socket: a poll() loop over the listener, the
//    peer connections and a self-pipe that the node thread writes to when
//    it enqueues outbound payloads. Received kData frames are adopted into
//    Payloads and handed to the node mailbox; outbound Payloads are popped
//    from per-peer queues and written as frames.
//  The two threads share only the mailbox, the outbound queues (one mutex
//  each) and the NetStats atomics -- never the MetricsRegistry (a std::map,
//  deliberately not thread-safe) and never the sockets.
//
// Connection management, from the static cluster config:
//  - deterministic topology: the HIGHER NodeId dials the lower, so every
//    unordered pair has exactly one TCP connection and simultaneous-dial
//    races cannot happen;
//  - both ends send a Hello frame (magic, wire version, claimed id, n);
//    data frames flow only after hellos complete in both directions, and a
//    hello that fails validation (bad magic/version/shape, an id out of
//    range, a dial from the wrong direction) drops the connection and
//    counts it -- junk floods from strangers never reach the node;
//  - a dropped connection re-dials with capped exponential backoff
//    (backoff_delay below); the attempt counter resets on a completed
//    handshake. The acceptor side just waits for the redial, and a fresh
//    hello for an already-connected peer replaces the old socket (the
//    peer restarted; the old fd is half-open garbage);
//  - half-open detection: after `ping_after` of rx silence the IO thread
//    sends a kPing; a peer silent for `drop_after` is dropped (TCP alone
//    can leave a dead peer's connection ESTABLISHED forever);
//  - outbound queues are bounded (`max_queue` payloads per peer): a slow
//    or dead peer costs dropped-and-counted payloads, never unbounded
//    memory. Queues persist across reconnects, and a frame partially
//    written when the connection died is requeued at the front -- the peer
//    cannot have seen a complete frame, so no duplicates and no silent
//    loss of the head-of-line message.
//
// Hot path: broadcast bumps the Payload refcount once per peer queue; the
// IO thread writes each frame with writev(header remainder, payload
// remainder) straight from the shared buffer. One encode, zero copies on
// the tx side, one adopted vector per frame on the rx side.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/payload.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "runtime/host.hpp"
#include "runtime/time.hpp"
#include "runtime/timer_wheel.hpp"

namespace tbft::runtime {

struct SocketHostConfig {
  NodeId id{0};
  std::uint32_t n{0};
  /// Per-node Rng derivation matches the Simulation and the LocalRunner:
  /// the root Rng(seed) is forked id+1 times and the last fork is this
  /// node's -- so a node's random choices agree across all three hosts.
  std::uint64_t seed{1};

  /// Where this node listens. Port 0 binds an ephemeral port; the real
  /// port (port()) must then be distributed to peers before start().
  net::Endpoint listen{};
  /// Peer listen endpoints, indexed by NodeId (own entry ignored). May be
  /// patched after construction with set_peer_endpoint, before start().
  std::vector<net::Endpoint> peers;

  Duration backoff_base{10 * kMillisecond};  ///< first redial delay
  Duration backoff_cap{1 * kSecond};         ///< redial delay ceiling
  /// Fraction of each redial delay spread (seeded, uniform, mean-preserving)
  /// around the deterministic value: decorrelates reconnect storms when a
  /// restarted peer faces the whole cluster's dialers at once. 0 = none.
  double backoff_jitter{0.1};
  Duration ping_after{500 * kMillisecond};   ///< rx silence before a kPing
  Duration drop_after{2 * kSecond};          ///< rx silence before dropping
  std::size_t max_queue{4096};               ///< outbound payloads per peer
  std::size_t max_frame_bytes{1u << 20};     ///< rx frame payload limit
};

/// Transport counters, updated by both threads; readable from anywhere
/// (including tests and benches while the host runs). Kept separate from
/// the per-node MetricsRegistry, which is node-thread-only by contract.
struct NetStats {
  std::atomic<std::uint64_t> frames_tx{0};
  std::atomic<std::uint64_t> frames_rx{0};
  std::atomic<std::uint64_t> bytes_tx{0};
  std::atomic<std::uint64_t> bytes_rx{0};
  std::atomic<std::uint64_t> dials{0};            ///< connect attempts started
  std::atomic<std::uint64_t> accepts{0};          ///< connections accepted
  std::atomic<std::uint64_t> handshakes{0};       ///< hellos completed (both ways)
  std::atomic<std::uint64_t> conns_dropped{0};    ///< established conns lost
  std::atomic<std::uint64_t> queue_dropped{0};    ///< payloads dropped at full queues
  std::atomic<std::uint64_t> rejected_hello{0};   ///< invalid handshakes dropped
  std::atomic<std::uint64_t> rx_oversize{0};      ///< lying length prefixes (conn dropped)
  std::atomic<std::uint64_t> rx_unknown{0};       ///< unknown-kind frames skipped
  std::atomic<std::uint64_t> rx_truncated{0};     ///< partial frames at stream end
  std::atomic<std::uint64_t> rx_junk{0};          ///< protocol-order violations
};

/// The redial delay after `attempt` consecutive failures: base << attempt,
/// saturating at `cap`. Pure so the backoff policy is unit-testable.
[[nodiscard]] constexpr Duration backoff_delay(std::uint32_t attempt, Duration base,
                                               Duration cap) noexcept {
  if (base <= 0) return 0;
  for (std::uint32_t i = 0; i < attempt; ++i) {
    base <<= 1;
    if (base >= cap || base <= 0) return cap;
  }
  return base < cap ? base : cap;
}

/// backoff_delay with a mean-preserving uniform spread of `jitter_frac`
/// around it, drawn from `rng`: delay in [d - s/2, d + s/2] for
/// s = d * jitter_frac. Pure given the Rng state, so the jittered policy
/// stays unit-testable and a seeded run stays reproducible.
[[nodiscard]] Duration jittered_backoff(std::uint32_t attempt, Duration base, Duration cap,
                                        double jitter_frac, Rng& rng) noexcept;

class SocketHost final : public Host {
 public:
  /// Binds the listener immediately (so port() is known before start() and
  /// ephemeral ports can be exchanged), but dials nothing until start().
  /// Aborts on an unbindable listen endpoint.
  SocketHost(SocketHostConfig cfg, std::unique_ptr<ProtocolNode> node);
  ~SocketHost() override;  // stops and joins if still running

  SocketHost(const SocketHost&) = delete;
  SocketHost& operator=(const SocketHost&) = delete;

  /// The actually bound listen port (resolves ephemeral binds).
  [[nodiscard]] std::uint16_t port() const noexcept { return listen_port_; }

  /// Patch a peer's endpoint (ephemeral-port exchange). Before start() only.
  void set_peer_endpoint(NodeId peer, net::Endpoint ep);

  /// Subscribe to this node's commits. Before start() only; callbacks run
  /// on the node thread.
  void add_commit_sink(CommitSink& sink);

  /// Spawn the node thread (runs on_start, then drains mailbox + timers)
  /// and the IO thread (listens, dials, pumps frames).
  void start();

  /// Stop both threads and join them. Idempotent. After stop() the node is
  /// quiescent and may be inspected from the caller's thread.
  void stop();

  [[nodiscard]] bool running() const noexcept { return started_ && !stop_.load(); }

  /// Run `fn` on the node thread, serialized with its handlers (FIFO with
  /// deliveries). Before start() it runs inline on the caller -- the safe
  /// window for pre-start seeding (mempool pre-loads).
  void post(std::function<void()> fn);

  /// Direct node access: only from the node's own thread (via post) or
  /// while the host is not running.
  [[nodiscard]] ProtocolNode& protocol_node() { return *node_; }
  template <class T>
  [[nodiscard]] T& node_as() {
    return dynamic_cast<T&>(*node_);
  }

  [[nodiscard]] const NetStats& net_stats() const noexcept { return stats_; }

  // Host interface (node thread only, except id/n/now which are const).
  [[nodiscard]] NodeId id() const override { return cfg_.id; }
  [[nodiscard]] std::uint32_t n() const override { return cfg_.n; }
  [[nodiscard]] Time now() const override;
  void send(NodeId dst, Payload payload) override;
  void broadcast(Payload payload) override;
  TimerId set_timer(Duration delay) override;
  void cancel_timer(TimerId id) override;
  void publish_commit(std::uint64_t stream, Value value,
                      std::span<const std::uint8_t> payload) override;
  MetricsRegistry& metrics() override { return metrics_; }
  Rng& rng() override { return rng_; }

 private:
  struct Conn;       // one TCP connection (defined in socket_host.cpp)
  struct PeerState;  // per-peer queue + redial bookkeeping

  struct InboxEntry {
    NodeId src{0};
    Payload payload;             // deliver entry when call is empty
    std::function<void()> call;  // posted functor otherwise
  };

  void run_node();
  void enqueue(InboxEntry entry);

  // IO thread internals.
  void run_io();
  void io_wake() const noexcept;  // any thread: poke the poll loop
  void io_dial(NodeId peer);
  void io_accept_pending();
  void io_handle_readable(Conn& c);
  void io_handle_writable(Conn& c);
  void io_on_frame(Conn& c, net::FrameKind kind, std::vector<std::uint8_t>&& body);
  bool io_on_hello(Conn& c, std::vector<std::uint8_t>&& body);
  void io_drop_conn(Conn& c, bool established_loss);
  void io_check_liveness(Time now_us);
  [[nodiscard]] Time io_next_deadline(Time now_us) const;
  void io_queue_ctrl(Conn& c, net::FrameKind kind,
                     std::span<const std::uint8_t> payload = {});
  [[nodiscard]] bool io_wants_write(const Conn& c);

  SocketHostConfig cfg_;
  std::unique_ptr<ProtocolNode> node_;
  std::chrono::steady_clock::time_point epoch_;
  MetricsRegistry metrics_;
  Rng rng_{0};     // node-thread only (ProtocolNode::ctx().rng())
  Rng io_rng_{0};  // IO-thread only: backoff jitter; derived independently of
                   // rng_ so the node's stream matches the other transports
  NetStats stats_;

  net::Fd listener_;
  std::uint16_t listen_port_{0};
  net::Fd wake_rd_, wake_wr_;  // self-pipe: node thread -> poll loop

  // Node mailbox (shared: IO thread + post() producers, node thread consumer).
  std::mutex mx_;
  std::condition_variable cv_;
  std::vector<InboxEntry> inbox_;  // guarded by mx_
  TimerWheel timers_;              // node-thread only

  // Outbound queues (shared: node thread producer, IO thread consumer).
  std::mutex out_mx_;
  std::vector<std::unique_ptr<PeerState>> peers_;  // indexed by NodeId

  std::vector<CommitSink*> commit_sinks_;
  std::mutex commit_mx_;

  // IO-thread-only connection state.
  std::vector<std::unique_ptr<Conn>> conns_;

  std::thread node_thread_;
  std::thread io_thread_;
  std::atomic<bool> stop_{false};
  bool started_{false};
  bool stopped_{false};
};

}  // namespace tbft::runtime
