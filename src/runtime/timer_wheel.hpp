#pragma once
// Generation-counted one-shot timer wheel shared by the real-time hosts
// (LocalRunner, SocketHost). A TimerId is (generation << 32 | slot+1), never
// 0, over a flat binary min-heap of (deadline, id); cancelling bumps the
// slot's generation, and stale heap entries are filtered when popped --
// cancel is O(1), expiry is O(log timers), and slots recycle through a free
// list so steady state allocates nothing.
//
// Threading: owner-thread only. set/cancel run inside the owning node's
// handlers, expiry runs in its host loop; a host that delivers handlers on
// one thread (the Host contract) therefore needs no locking around the
// wheel.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "runtime/host.hpp"
#include "runtime/time.hpp"

namespace tbft::runtime {

class TimerWheel {
 public:
  TimerId arm(Time at) {
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(Slot{});
    }
    Slot& s = slots_[slot];
    s.armed = true;
    const TimerId id = make_id(slot, s.generation);
    heap_.push_back(Entry{at, id});
    std::push_heap(heap_.begin(), heap_.end(), later);
    return id;
  }

  void cancel(TimerId id) {
    if (id == 0 || !live(id)) return;
    const std::uint32_t slot = slot_of(id);
    slots_[slot].armed = false;
    ++slots_[slot].generation;  // invalidate the heap entry; filtered on pop
    free_slots_.push_back(slot);
  }

  /// Earliest live deadline, kNever when none (pops stale heads).
  [[nodiscard]] Time next_deadline() {
    while (!heap_.empty()) {
      if (live(heap_.front().id)) return heap_.front().at;
      pop_heap_root();  // stale (cancelled) entry
    }
    return kNever;
  }

  /// Pop every timer due at or before `now` into `fired` (live ids only).
  void pop_due(Time now, std::vector<TimerId>& fired) {
    while (!heap_.empty() && heap_.front().at <= now) {
      const TimerId id = heap_.front().id;
      pop_heap_root();
      if (!live(id)) continue;
      const std::uint32_t slot = slot_of(id);
      slots_[slot].armed = false;
      ++slots_[slot].generation;
      free_slots_.push_back(slot);
      fired.push_back(id);
    }
  }

 private:
  struct Slot {
    std::uint32_t generation{0};
    bool armed{false};
  };
  struct Entry {
    Time at{0};
    TimerId id{0};
  };
  /// std::*_heap comparator for a min-heap by deadline.
  static bool later(const Entry& a, const Entry& b) noexcept { return a.at > b.at; }

  static constexpr TimerId make_id(std::uint32_t slot, std::uint32_t gen) noexcept {
    return (static_cast<TimerId>(gen) << 32) | (slot + 1);
  }
  static constexpr std::uint32_t slot_of(TimerId id) noexcept {
    return static_cast<std::uint32_t>(id & 0xFFFFFFFFu) - 1;
  }
  static constexpr std::uint32_t gen_of(TimerId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32);
  }

  [[nodiscard]] bool live(TimerId id) const noexcept {
    const std::uint32_t slot = slot_of(id);
    return slot < slots_.size() && slots_[slot].armed &&
           slots_[slot].generation == gen_of(id);
  }

  void pop_heap_root() {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
  }

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<Entry> heap_;  // std::*_heap min-heap by `at`
};

}  // namespace tbft::runtime
