#include "tetrabft.hpp"

#include <filesystem>
#include <string>
#include <utility>

#include "shard/tracker.hpp"

namespace tbft {

// ---- detail::CommitHub -----------------------------------------------------

void detail::CommitHub::on_commit(const runtime::Commit& commit) {
  {
    std::lock_guard<std::mutex> lk(mx);
    for (const auto& cb : callbacks) cb(commit);
  }
  cv.notify_all();
}

bool detail::CommitHub::wait_for(const std::function<bool()>& pred,
                                 runtime::Duration timeout) {
  std::unique_lock<std::mutex> lk(mx);
  return cv.wait_for(lk, std::chrono::microseconds(timeout), [&] { return pred(); });
}

// ---- NodeHandle ------------------------------------------------------------

void NodeHandle::submit(std::vector<std::uint8_t> tx) {
  multishot::MultishotNode* replica = cluster_->replicas_.at(id_);
  cluster_->runner_.post(id_, [replica, tx = std::move(tx)]() mutable {
    replica->submit_tx(std::move(tx));
  });
}

// ---- Cluster ---------------------------------------------------------------

Cluster::Cluster(const multishot::MultishotConfig& node_cfg, std::uint64_t seed)
    : runner_(runtime::LocalRunnerConfig{seed}) {
  for (std::uint32_t i = 0; i < node_cfg.n; ++i) {
    auto node = std::make_unique<multishot::MultishotNode>(node_cfg);
    replicas_.push_back(node.get());
    runner_.add_node(std::move(node));
  }
  runner_.add_commit_sink(hub_);
}

Cluster::~Cluster() { stop(); }

NodeHandle Cluster::node(NodeId id) {
  if (id >= replicas_.size()) {
    throw std::out_of_range("Cluster::node: no replica with id " + std::to_string(id));
  }
  return NodeHandle(*this, id);
}

void Cluster::on_commit(CommitCallback cb) {
  if (runner_.running()) {
    throw std::logic_error("Cluster::on_commit: subscribe before start()");
  }
  hub_.callbacks.push_back(std::move(cb));
}

void Cluster::start() { runner_.start(); }

void Cluster::stop() {
  runner_.stop();
  // Replica threads are quiescent now: push any buffered WAL tail to disk so
  // an orderly shutdown loses nothing regardless of the flush cadence.
  for (auto& durable : durables_) durable->flush();
}

bool Cluster::wait_for(const std::function<bool()>& pred, runtime::Duration timeout) {
  return hub_.wait_for(pred, timeout);
}

multishot::MultishotNode& Cluster::replica(NodeId id) {
  if (runner_.running()) {
    throw std::logic_error(
        "Cluster::replica: direct access while running races the replica thread; "
        "stop() first or use post()/submit()");
  }
  return *replicas_.at(id);
}

// ---- SimCluster ------------------------------------------------------------

bool SimCluster::run_until_all_finalized(Slot target, runtime::Duration deadline) {
  return sim_->run_until_pred(
      [this, target] {
        for (const auto* replica : replicas_) {
          if (replica->finalized_count() < target) return false;
        }
        return true;
      },
      deadline);
}

// ---- ShardedCluster --------------------------------------------------------

void ShardedNode::submit(std::vector<std::uint8_t> tx) {
  const auto tag = workload::parse_request_tag(tx);
  const std::uint32_t shard = tag ? cluster_->router_.shard_of(*tag) : 0;
  shard::ShardMux* mux = cluster_->muxes_.at(id_);
  cluster_->runner_.post(id_, [mux, shard, tx = std::move(tx)]() mutable {
    mux->submit(shard, std::move(tx));
  });
}

ShardedCluster::ShardedCluster(std::uint32_t shards, std::uint64_t seed)
    : runner_(runtime::LocalRunnerConfig{seed}), router_(shards) {}

ShardedCluster::~ShardedCluster() { stop(); }

ShardedNode ShardedCluster::node(NodeId id) {
  if (id >= muxes_.size()) {
    throw std::out_of_range("ShardedCluster::node: no replica with id " + std::to_string(id));
  }
  return ShardedNode(*this, id);
}

void ShardedCluster::on_commit(CommitCallback cb) {
  if (runner_.running()) {
    throw std::logic_error("ShardedCluster::on_commit: subscribe before start()");
  }
  hub_.callbacks.push_back(std::move(cb));
}

void ShardedCluster::start() { runner_.start(); }

void ShardedCluster::stop() {
  runner_.stop();
  for (auto& per_node : durables_) {
    for (auto& durable : per_node) durable->flush();
  }
}

bool ShardedCluster::wait_for(const std::function<bool()>& pred, runtime::Duration timeout) {
  return hub_.wait_for(pred, timeout);
}

multishot::MultishotNode& ShardedCluster::instance(NodeId id, std::uint32_t shard) {
  if (runner_.running()) {
    throw std::logic_error(
        "ShardedCluster::instance: direct access while running races the replica "
        "thread; stop() first or use node().submit()");
  }
  return muxes_.at(id)->instance(shard);
}

std::vector<multishot::MultishotNode*> ShardedCluster::shard_instances(std::uint32_t shard) {
  if (runner_.running()) {
    throw std::logic_error(
        "ShardedCluster::shard_instances: direct access while running races the "
        "replica threads; stop() first");
  }
  std::vector<multishot::MultishotNode*> out;
  out.reserve(muxes_.size());
  for (auto* mux : muxes_) out.push_back(&mux->instance(shard));
  return out;
}

// ---- ShardedSimCluster -----------------------------------------------------

bool ShardedSimCluster::run_until_all_finalized(Slot target, runtime::Duration deadline) {
  return sim_->run_until_pred(
      [this, target] {
        for (auto* mux : muxes_) {
          for (std::uint32_t k = 0; k < router_.shards(); ++k) {
            if (mux->instance(k).finalized_count() < target) return false;
          }
        }
        return true;
      },
      deadline);
}

// ---- SocketCluster ---------------------------------------------------------

SocketCluster::~SocketCluster() { stop(); }

void SocketCluster::on_commit(CommitCallback cb) {
  if (running_) throw std::logic_error("SocketCluster::on_commit: subscribe before start()");
  hub_.callbacks.push_back(std::move(cb));
}

void SocketCluster::start() {
  for (auto& host : hosts_) host->start();
  running_ = true;
}

void SocketCluster::stop() {
  if (!running_) return;
  running_ = false;
  for (auto& host : hosts_) host->stop();
  for (auto& durable : durables_) durable->flush();
}

bool SocketCluster::wait_for(const std::function<bool()>& pred,
                             runtime::Duration timeout) {
  return hub_.wait_for(pred, timeout);
}

void SocketCluster::submit(NodeId id, std::vector<std::uint8_t> tx) {
  multishot::MultishotNode* replica = replicas_.at(id);
  hosts_.at(id)->post([replica, tx = std::move(tx)]() mutable {
    replica->submit_tx(std::move(tx));
  });
}

multishot::MultishotNode& SocketCluster::replica(NodeId id) {
  if (running_) {
    throw std::logic_error(
        "SocketCluster::replica: direct access while running races the node "
        "thread; stop() first or use submit()");
  }
  return *replicas_.at(id);
}

// ---- SocketNode ------------------------------------------------------------

SocketNode::~SocketNode() { stop(); }

void SocketNode::on_commit(CommitCallback cb) {
  if (running_) throw std::logic_error("SocketNode::on_commit: subscribe before start()");
  hub_.callbacks.push_back(std::move(cb));
}

void SocketNode::start() {
  host_->start();
  running_ = true;
}

void SocketNode::stop() {
  if (!running_) return;
  running_ = false;
  host_->stop();
  if (durable_) durable_->flush();
}

bool SocketNode::wait_for(const std::function<bool()>& pred,
                          runtime::Duration timeout) {
  return hub_.wait_for(pred, timeout);
}

void SocketNode::submit(std::vector<std::uint8_t> tx) {
  multishot::MultishotNode* replica = replica_;
  host_->post([replica, tx = std::move(tx)]() mutable {
    replica->submit_tx(std::move(tx));
  });
}

multishot::MultishotNode& SocketNode::replica() {
  if (running_) {
    throw std::logic_error(
        "SocketNode::replica: direct access while running races the node "
        "thread; stop() first or use submit()");
  }
  return *replica_;
}

// ---- ClusterBuilder --------------------------------------------------------

ClusterBuilder& ClusterBuilder::nodes(std::uint32_t n) {
  n_ = n;
  return *this;
}
ClusterBuilder& ClusterBuilder::faults(std::uint32_t f) {
  f_ = f;
  return *this;
}
ClusterBuilder& ClusterBuilder::shards(std::uint32_t s) {
  if (s == 0 || s > 1024) {
    throw std::invalid_argument("ClusterBuilder: shards must be in [1, 1024]");
  }
  shards_ = s;
  return *this;
}
ClusterBuilder& ClusterBuilder::seed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}
ClusterBuilder& ClusterBuilder::delta_bound(runtime::Duration delta) {
  if (delta <= 0) throw std::invalid_argument("ClusterBuilder: delta_bound must be > 0");
  delta_bound_ = delta;
  return *this;
}
ClusterBuilder& ClusterBuilder::batching(std::uint32_t max_txs, std::uint32_t max_bytes,
                                         runtime::Duration timeout) {
  if (max_txs == 0 || max_bytes == 0) {
    throw std::invalid_argument("ClusterBuilder: batching caps must be > 0");
  }
  max_batch_txs_ = max_txs;
  max_batch_bytes_ = max_bytes;
  batch_timeout_ = timeout;
  return *this;
}
ClusterBuilder& ClusterBuilder::pipelining(std::uint32_t depth) {
  if (depth == 0 || depth > 16) {
    throw std::invalid_argument(
        "ClusterBuilder: pipelining depth must be in [1, 16] (1 = off; deeper "
        "stripes outrun the finality depth without adding throughput)");
  }
  pipeline_depth_ = depth;
  return *this;
}
ClusterBuilder& ClusterBuilder::adaptive_batching(std::uint32_t max_txs) {
  adaptive_batch_txs_ = max_txs;
  return *this;
}
ClusterBuilder& ClusterBuilder::mempool(std::size_t capacity,
                                        multishot::MempoolPolicy policy) {
  if (capacity == 0) throw std::invalid_argument("ClusterBuilder: mempool capacity must be > 0");
  mempool_capacity_ = capacity;
  mempool_policy_ = policy;
  return *this;
}
ClusterBuilder& ClusterBuilder::storage_tail(std::size_t blocks) {
  if (blocks == 0) throw std::invalid_argument("ClusterBuilder: storage tail must be > 0");
  finalized_tail_ = blocks;
  return *this;
}
ClusterBuilder& ClusterBuilder::forwarding(bool on) {
  forward_to_leader_ = on;
  return *this;
}
ClusterBuilder& ClusterBuilder::sim_delta_actual(runtime::Duration delta) {
  if (delta <= 0) throw std::invalid_argument("ClusterBuilder: sim_delta_actual must be > 0");
  sim_delta_actual_ = delta;
  return *this;
}
ClusterBuilder& ClusterBuilder::data_dir(std::string path) {
  if (path.empty()) {
    throw std::invalid_argument(
        "ClusterBuilder: data_dir must be a non-empty path (omit the call for "
        "an in-memory cluster)");
  }
  data_dir_ = std::move(path);
  return *this;
}
ClusterBuilder& ClusterBuilder::range_sync(bool on) {
  enable_sync_ = on;
  return *this;
}
ClusterBuilder& ClusterBuilder::commit_epochs(Slot slots) {
  commit_epoch_slots_ = slots;
  return *this;
}
ClusterBuilder& ClusterBuilder::checkpoint_every(Slot slots) {
  if (slots == 0) {
    throw std::invalid_argument("ClusterBuilder: checkpoint_every must be > 0 slots");
  }
  checkpoint_every_ = slots;
  return *this;
}
ClusterBuilder& ClusterBuilder::wal_flush_every(std::uint32_t records) {
  if (records == 0) {
    throw std::invalid_argument("ClusterBuilder: wal_flush_every must be > 0 records");
  }
  wal_flush_every_ = records;
  return *this;
}
ClusterBuilder& ClusterBuilder::wal_segment_bytes(std::size_t bytes) {
  if (bytes == 0) {
    throw std::invalid_argument("ClusterBuilder: wal_segment_bytes must be > 0");
  }
  wal_segment_bytes_ = bytes;
  return *this;
}

ClusterBuilder& ClusterBuilder::socket_backoff(runtime::Duration base,
                                               runtime::Duration cap, double jitter) {
  if (base <= 0 || cap < base) {
    throw std::invalid_argument("ClusterBuilder: socket_backoff needs 0 < base <= cap");
  }
  if (jitter < 0 || jitter > 1) {
    throw std::invalid_argument("ClusterBuilder: socket_backoff jitter must be in [0, 1]");
  }
  socket_backoff_base_ = base;
  socket_backoff_cap_ = cap;
  socket_backoff_jitter_ = jitter;
  return *this;
}
ClusterBuilder& ClusterBuilder::socket_liveness(runtime::Duration ping_after,
                                                runtime::Duration drop_after) {
  if (ping_after <= 0 || drop_after <= ping_after) {
    throw std::invalid_argument(
        "ClusterBuilder: socket_liveness needs 0 < ping_after < drop_after");
  }
  socket_ping_after_ = ping_after;
  socket_drop_after_ = drop_after;
  return *this;
}
ClusterBuilder& ClusterBuilder::socket_queue(std::size_t max_payloads) {
  if (max_payloads == 0) {
    throw std::invalid_argument("ClusterBuilder: socket_queue must be > 0");
  }
  socket_queue_ = max_payloads;
  return *this;
}
ClusterBuilder& ClusterBuilder::socket_max_frame(std::size_t bytes) {
  if (bytes < 4096) {
    throw std::invalid_argument(
        "ClusterBuilder: socket_max_frame below 4096 bytes cannot carry even a "
        "small block");
  }
  socket_max_frame_ = bytes;
  return *this;
}

multishot::MultishotConfig ClusterBuilder::node_config() const {
  const std::uint32_t f = f_.has_value() ? *f_ : (n_ > 0 ? (n_ - 1) / 3 : 0);
  // QuorumParams validates n > 3f (and n > 0) with a descriptive throw.
  (void)QuorumParams(n_, f);
  if (finalized_tail_ < 8) {
    throw std::logic_error(
        "ClusterBuilder: storage_tail(" + std::to_string(finalized_tail_) +
        ") is below the 8-block floor FinalizedStore needs to keep compaction "
        "behind the finalization frontier; raise storage_tail to at least 8");
  }
  if (enable_sync_ && finalized_tail_ < multishot::ChainStore::kWindow) {
    throw std::logic_error(
        "ClusterBuilder: storage_tail(" + std::to_string(finalized_tail_) +
        ") is smaller than the " + std::to_string(multishot::ChainStore::kWindow) +
        "-slot unfinalized window, so range-sync could compact away blocks a "
        "lagging peer still needs; raise storage_tail to at least " +
        std::to_string(multishot::ChainStore::kWindow) +
        " or disable it with range_sync(false)");
  }
  multishot::MultishotConfig cfg;
  cfg.n = n_;
  cfg.f = f;
  cfg.delta_bound = delta_bound_;
  cfg.max_slots = 0;  // production shape: unbounded chain, idle suppression
  cfg.max_batch_txs = max_batch_txs_;
  cfg.max_batch_bytes = max_batch_bytes_;
  cfg.batch_timeout = batch_timeout_;
  cfg.mempool_capacity = mempool_capacity_;
  cfg.mempool_policy = mempool_policy_;
  cfg.finalized_tail = finalized_tail_;
  cfg.forward_to_leader = forward_to_leader_;
  cfg.commit_epoch_slots = commit_epoch_slots_;
  cfg.enable_sync = enable_sync_;
  cfg.pipeline_depth = pipeline_depth_;
  if (adaptive_batch_txs_ > max_batch_txs_) {
    cfg.adaptive_batch_txs = adaptive_batch_txs_;
  }
  return cfg;
}

std::unique_ptr<storage::DurableChain> ClusterBuilder::attach_durable_at(
    const std::string& dir, multishot::MultishotNode& replica) const {
  storage::DurableOptions opts;
  opts.segment_bytes = wal_segment_bytes_;
  opts.flush_every = wal_flush_every_;
  opts.checkpoint_every = checkpoint_every_;
  auto durable = std::make_unique<storage::DurableChain>(dir, opts);
  storage::RecoveredState rec = durable->recover();
  if (rec.tip() > 0 || !rec.commit_state.empty()) {
    replica.restore_chain(rec.checkpoint, rec.commit_state, std::move(rec.tail));
  }
  replica.set_durable(durable.get());
  return durable;
}

std::unique_ptr<storage::DurableChain> ClusterBuilder::attach_durable(
    NodeId id, multishot::MultishotNode& replica) const {
  const std::filesystem::path dir =
      std::filesystem::path(data_dir_) / ("node-" + std::to_string(id));
  return attach_durable_at(dir.string(), replica);
}

std::vector<std::unique_ptr<multishot::MultishotNode>> ClusterBuilder::make_shard_instances(
    NodeId id, const multishot::MultishotConfig& node_cfg,
    std::vector<std::unique_ptr<storage::DurableChain>>& durables) const {
  std::vector<std::unique_ptr<multishot::MultishotNode>> instances;
  instances.reserve(shards_);
  for (std::uint32_t k = 0; k < shards_; ++k) {
    auto node = std::make_unique<multishot::MultishotNode>(node_cfg);
    if (!data_dir_.empty()) {
      const std::filesystem::path dir = std::filesystem::path(data_dir_) /
                                        ("node-" + std::to_string(id)) /
                                        ("shard-" + std::to_string(k));
      durables.push_back(attach_durable_at(dir.string(), *node));
    }
    instances.push_back(std::move(node));
  }
  return instances;
}

void ClusterBuilder::require_unsharded(const char* builder) const {
  if (shards_ > 1) {
    throw std::logic_error(std::string("ClusterBuilder: ") + builder +
                           " builds one chain; with shards(" + std::to_string(shards_) +
                           ") use build_sharded_local()/build_sharded_sim()");
  }
}

std::unique_ptr<ShardedCluster> ClusterBuilder::build_sharded_local() const {
  const multishot::MultishotConfig node_cfg = node_config();
  auto cluster = std::unique_ptr<ShardedCluster>(new ShardedCluster(shards_, seed_));
  for (std::uint32_t i = 0; i < node_cfg.n; ++i) {
    cluster->durables_.emplace_back();
    auto mux = std::make_unique<shard::ShardMux>(
        make_shard_instances(i, node_cfg, cluster->durables_.back()));
    cluster->muxes_.push_back(mux.get());
    cluster->runner_.add_node(std::move(mux));
  }
  cluster->runner_.add_commit_sink(cluster->hub_);
  return cluster;
}

std::unique_ptr<ShardedSimCluster> ClusterBuilder::build_sharded_sim() const {
  const multishot::MultishotConfig node_cfg = node_config();
  auto cluster = std::unique_ptr<ShardedSimCluster>(new ShardedSimCluster(shards_));
  sim::SimConfig sc;
  sc.seed = seed_;
  sc.net.delta_bound = delta_bound_;
  sc.net.delta_actual = sim_delta_actual_;
  sc.net.delta_min = sim_delta_actual_;
  cluster->sim_ = std::make_unique<sim::Simulation>(sc);
  for (std::uint32_t i = 0; i < node_cfg.n; ++i) {
    cluster->durables_.emplace_back();
    auto mux = std::make_unique<shard::ShardMux>(
        make_shard_instances(i, node_cfg, cluster->durables_.back()));
    shard::ShardMux* raw = mux.get();
    cluster->muxes_.push_back(raw);
    cluster->ports_.push_back(std::make_unique<shard::RoutedPort>(
        cluster->router_, [raw](std::uint32_t shard, std::vector<std::uint8_t> tx) {
          return raw->submit(shard, std::move(tx));
        }));
    cluster->sim_->add_node(std::move(mux));
  }
  return cluster;
}

std::unique_ptr<Cluster> ClusterBuilder::build_local() const {
  require_unsharded("build_local()");
  auto cluster = std::unique_ptr<Cluster>(new Cluster(node_config(), seed_));
  if (!data_dir_.empty()) {
    for (NodeId i = 0; i < static_cast<NodeId>(cluster->replicas_.size()); ++i) {
      cluster->durables_.push_back(attach_durable(i, *cluster->replicas_[i]));
    }
  }
  return cluster;
}

runtime::SocketHostConfig ClusterBuilder::socket_host_config(
    NodeId id, net::Endpoint listen) const {
  // Validate against the largest proposal the node may actually emit: under
  // adaptive batching that is the scaled byte ceiling, not the base cap.
  const std::uint64_t max_proposal_bytes = node_config().adaptive_bytes_ceiling();
  if (socket_max_frame_ < max_proposal_bytes + 4096) {
    throw std::logic_error(
        "ClusterBuilder: socket_max_frame(" + std::to_string(socket_max_frame_) +
        ") leaves no headroom over the largest proposal payload (" +
        std::to_string(max_proposal_bytes) +
        " bytes); a full proposal would be dropped as oversize -- raise "
        "socket_max_frame or lower the batching/adaptive_batching caps");
  }
  runtime::SocketHostConfig hc;
  hc.id = id;
  hc.n = n_;
  hc.seed = seed_;
  hc.listen = std::move(listen);
  hc.backoff_base = socket_backoff_base_;
  hc.backoff_cap = socket_backoff_cap_;
  hc.backoff_jitter = socket_backoff_jitter_;
  hc.ping_after = socket_ping_after_;
  hc.drop_after = socket_drop_after_;
  hc.max_queue = socket_queue_;
  hc.max_frame_bytes = socket_max_frame_;
  return hc;
}

std::unique_ptr<SocketCluster> ClusterBuilder::build_socket() const {
  require_unsharded("build_socket()");
  const multishot::MultishotConfig node_cfg = node_config();
  auto cluster = std::unique_ptr<SocketCluster>(new SocketCluster());
  for (std::uint32_t i = 0; i < node_cfg.n; ++i) {
    auto node = std::make_unique<multishot::MultishotNode>(node_cfg);
    cluster->replicas_.push_back(node.get());
    if (!data_dir_.empty()) {
      cluster->durables_.push_back(attach_durable(i, *node));
    }
    // Ephemeral listen port: the host binds at construction, so the real
    // port is known immediately and nothing ever guesses a free one.
    cluster->hosts_.push_back(std::make_unique<runtime::SocketHost>(
        socket_host_config(i, net::Endpoint{"127.0.0.1", 0}), std::move(node)));
  }
  for (std::uint32_t i = 0; i < node_cfg.n; ++i) {
    cluster->hosts_[i]->add_commit_sink(cluster->hub_);
    for (std::uint32_t j = 0; j < node_cfg.n; ++j) {
      if (j == i) continue;
      cluster->hosts_[i]->set_peer_endpoint(
          j, net::Endpoint{"127.0.0.1", cluster->hosts_[j]->port()});
    }
  }
  return cluster;
}

std::unique_ptr<SocketNode> ClusterBuilder::build_socket_node(
    NodeId id, net::Endpoint listen) const {
  require_unsharded("build_socket_node()");
  const multishot::MultishotConfig node_cfg = node_config();
  if (id >= node_cfg.n) {
    throw std::invalid_argument("ClusterBuilder: build_socket_node id " +
                                std::to_string(id) + " out of range for n=" +
                                std::to_string(node_cfg.n));
  }
  auto sn = std::unique_ptr<SocketNode>(new SocketNode());
  auto node = std::make_unique<multishot::MultishotNode>(node_cfg);
  sn->replica_ = node.get();
  if (!data_dir_.empty()) {
    sn->durable_ = attach_durable(id, *node);
  }
  sn->host_ = std::make_unique<runtime::SocketHost>(
      socket_host_config(id, std::move(listen)), std::move(node));
  sn->host_->add_commit_sink(sn->hub_);
  return sn;
}

std::unique_ptr<SimCluster> ClusterBuilder::build_sim() const {
  require_unsharded("build_sim()");
  const multishot::MultishotConfig node_cfg = node_config();
  auto cluster = std::unique_ptr<SimCluster>(new SimCluster());
  sim::SimConfig sc;
  sc.seed = seed_;
  sc.net.delta_bound = delta_bound_;
  sc.net.delta_actual = sim_delta_actual_;
  sc.net.delta_min = sim_delta_actual_;
  cluster->sim_ = std::make_unique<sim::Simulation>(sc);
  struct ReplicaPort final : workload::SubmitPort {
    explicit ReplicaPort(multishot::MultishotNode& n) : node(&n) {}
    bool submit(std::vector<std::uint8_t> tx) override {
      return node->submit_tx(std::move(tx));
    }
    multishot::MultishotNode* node;
  };
  for (std::uint32_t i = 0; i < node_cfg.n; ++i) {
    auto node = std::make_unique<multishot::MultishotNode>(node_cfg);
    cluster->replicas_.push_back(node.get());
    cluster->ports_.push_back(std::make_unique<ReplicaPort>(*node));
    if (!data_dir_.empty()) {
      cluster->durables_.push_back(attach_durable(i, *node));
    }
    cluster->sim_->add_node(std::move(node));
  }
  return cluster;
}

}  // namespace tbft
