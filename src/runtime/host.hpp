#pragma once
// The transport-neutral runtime API: the boundary between the consensus
// cores (core/, multishot/, baselines/) and whatever hosts them.
//
// A protocol implementation derives from ProtocolNode and interacts with
// the world exclusively through its Host: sends, broadcasts, timers, the
// clock, metrics, randomness, and commit publication. Nothing in this
// header knows about the discrete-event simulator -- the Simulation
// (sim/runtime.hpp) is just one Host implementation, the real-time
// threaded LocalRunner (runtime/local_runner.hpp) is another, and a
// socket-backed deployment would be a third.
//
// Threading contract: a Host delivers on_start / on_message / on_timer for
// one node strictly serialized (never concurrently), so ProtocolNode
// subclasses need no internal locking. Different nodes may run on
// different threads (LocalRunner does exactly that); anything shared
// between nodes must be thread-safe -- which is why Payload's refcount and
// decode-cache publication are (common/payload.hpp), and why metrics() and
// rng() are per-node.
//
// Hot-path design (DESIGN_PERF.md): sends and broadcasts move ref-counted
// Payloads, so an n-way broadcast performs one encode and zero payload
// copies regardless of the host behind the interface.

#include <cstdint>
#include <span>

#include "common/metrics.hpp"
#include "common/payload.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "runtime/time.hpp"

namespace tbft::runtime {

/// Handle for a one-shot timer. Ids are never 0, so 0 is a safe "no timer"
/// sentinel.
using TimerId = std::uint64_t;

/// One finalized decision as published through a Host. `stream` is 0 for
/// single-shot consensus and the slot for multi-shot; `payload` is the
/// committed block's payload bytes (empty for single-shot values), valid
/// only for the duration of the CommitSink callback.
struct Commit {
  NodeId node{0};  ///< The replica that finalized (the publisher).
  std::uint64_t stream{0};
  Value value{};
  std::span<const std::uint8_t> payload{};
  Time at{0};
};

/// Subscriber to the commits a host's nodes publish. Replaces the old
/// NodeContext::report_decision sink: hosts fan every published commit out
/// to their registered sinks (the Simulation additionally records a
/// DecisionRecord in its Trace).
///
/// Threading: a host may invoke on_commit from the publishing node's
/// thread. Hosts serialize sink invocations (the LocalRunner holds one
/// commit mutex across the fan-out), so a sink sees a total order of
/// commits but must not assume any particular thread.
class CommitSink {
 public:
  virtual ~CommitSink() = default;
  virtual void on_commit(const Commit& commit) = 0;
};

/// Services a node may use. Implemented by the Simulation (sim/runtime.hpp)
/// and the LocalRunner (runtime/local_runner.hpp).
class Host {
 public:
  virtual ~Host() = default;

  [[nodiscard]] virtual NodeId id() const = 0;
  [[nodiscard]] virtual std::uint32_t n() const = 0;
  [[nodiscard]] virtual Time now() const = 0;

  /// Point-to-point send. Self-sends are delivered through the node's own
  /// queue (handlers never re-enter each other) and cost no network bytes.
  virtual void send(NodeId dst, Payload payload) = 0;

  /// Send to every node, including self (protocol pseudo-code counts a
  /// node's own broadcast toward its quorums). All n recipients share one
  /// ref-counted payload: one encode, zero buffer copies.
  virtual void broadcast(Payload payload) = 0;

  /// One-shot timer firing at now()+delay. Returns an id passed to on_timer.
  virtual TimerId set_timer(Duration delay) = 0;
  virtual void cancel_timer(TimerId id) = 0;

  /// Publish a decision (single-shot) or a finalization (multi-shot, keyed
  /// by stream = slot) to the host's subscribed CommitSinks. `payload` is
  /// borrowed for the duration of the call.
  virtual void publish_commit(std::uint64_t stream, Value value,
                              std::span<const std::uint8_t> payload = {}) = 0;

  /// Per-node metrics (protocol-specific counters). Hosts may back this
  /// with one registry per node (the LocalRunner does, so node threads
  /// never contend) or one per run (the single-threaded Simulation).
  virtual MetricsRegistry& metrics() = 0;

  /// Deterministic per-node randomness.
  virtual Rng& rng() = 0;
};

/// A protocol node. Entry points are serialized per node by the host; under
/// the Simulation they run to completion instantly in simulated time.
class ProtocolNode {
 public:
  virtual ~ProtocolNode() = default;

  /// Called once before any message/timer, after the context is bound.
  virtual void on_start() = 0;
  /// `from` is the authenticated channel identity of the sender. The payload
  /// is shared with every other recipient of the same broadcast; it may carry
  /// a sender-attached decode cache (Payload::cached) that by construction
  /// agrees with the bytes.
  virtual void on_message(NodeId from, const Payload& payload) = 0;
  virtual void on_timer(TimerId id) = 0;

  void bind(Host& ctx) noexcept { ctx_ = &ctx; }

 protected:
  [[nodiscard]] Host& ctx() const {
    return *ctx_;
  }

 private:
  Host* ctx_{nullptr};
};

}  // namespace tbft::runtime
