#pragma once
// Transport-neutral time for the runtime API. One tick is one microsecond.
//
// `Time` is a point on a host's clock (microseconds since that host's
// epoch); `Duration` is a span between two such points. The discrete-event
// Simulation interprets them as simulated time (local computation is
// instantaneous, paper §2); the real-time LocalRunner backs them with
// std::chrono::steady_clock. Protocol code only ever does arithmetic on
// them, so the same node binary runs unmodified under either host.

#include <cstdint>

namespace tbft::runtime {

using Time = std::int64_t;
using Duration = std::int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;

/// Sentinel for "never".
inline constexpr Time kNever = INT64_MAX;

}  // namespace tbft::runtime
