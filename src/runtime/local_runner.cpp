#include "runtime/local_runner.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace tbft::runtime {

// ---- Context ---------------------------------------------------------------

class LocalRunner::Context final : public Host {
 public:
  Context(LocalRunner& runner, NodeId id) : runner_(runner), id_(id) {}

  [[nodiscard]] NodeId id() const override { return id_; }
  [[nodiscard]] std::uint32_t n() const override { return runner_.node_count(); }
  /// The node's *skewed* clock: protocol code never sees the real time.
  [[nodiscard]] Time now() const override {
    return runner_.node_now(runner_.nodes_[id_]);
  }

  void send(NodeId dst, Payload payload) override {
    runner_.deliver(dst, id_, std::move(payload));
  }

  void broadcast(Payload payload) override {
    // Every recipient shares the same ref-counted payload: the copies below
    // bump an atomic reference count, never the bytes.
    const std::uint32_t n = runner_.node_count();
    for (NodeId dst = 0; dst < n; ++dst) {
      runner_.deliver(dst, id_, payload);
    }
  }

  TimerId set_timer(Duration delay) override {
    TBFT_ASSERT(delay >= 0);
    // Owner-thread only: handlers (and post()ed functors) run on the node's
    // thread, the only thread that touches this wheel. Deadlines live in
    // the node's skewed time domain -- run_node compares them against
    // node_now and converts back to real time only to sleep.
    NodeRt& rt = runner_.nodes_[id_];
    return rt.timers.arm(runner_.node_now(rt) + delay);
  }

  void cancel_timer(TimerId id) override { runner_.nodes_[id_].timers.cancel(id); }

  void publish_commit(std::uint64_t stream, Value value,
                      std::span<const std::uint8_t> payload) override {
    runner_.publish_commit(id_, stream, value, payload);
  }

  MetricsRegistry& metrics() override { return *runner_.nodes_[id_].metrics; }
  Rng& rng() override { return runner_.nodes_[id_].rng; }

 private:
  LocalRunner& runner_;
  NodeId id_;
};

// ---- LocalRunner -----------------------------------------------------------

LocalRunner::LocalRunner(LocalRunnerConfig cfg)
    : cfg_(cfg), epoch_(std::chrono::steady_clock::now()), root_rng_(cfg.seed) {}

LocalRunner::~LocalRunner() { stop(); }

Time LocalRunner::now() const noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Time LocalRunner::node_now(const NodeRt& rt) const noexcept {
  const Time real = now();
  const Time skewed =
      real + rt.skew_offset + static_cast<Time>(rt.drift * static_cast<double>(real));
  // A clock never reads before its own boot: a negative offset would
  // otherwise make pre-start state (mempool holds stamped 0) sit in the
  // node's future and freeze batching until the skew wears off.
  return skewed < 0 ? 0 : skewed;
}

Time LocalRunner::to_real(const NodeRt& rt, Time local) const noexcept {
  const auto real =
      static_cast<double>(local - rt.skew_offset) / (1.0 + rt.drift);
  return real <= 0 ? 0 : static_cast<Time>(real);
}

void LocalRunner::set_clock_skew(NodeId node, Duration offset, double drift) {
  TBFT_ASSERT_MSG(!started_, "set_clock_skew before start()");
  TBFT_ASSERT_MSG(drift > -1.0, "drift must be > -1");
  NodeRt& rt = nodes_.at(node);
  rt.skew_offset = offset;
  rt.drift = drift;
}

NodeId LocalRunner::add_node(std::unique_ptr<ProtocolNode> node) {
  TBFT_ASSERT_MSG(!started_, "cannot add nodes after start()");
  const auto id = static_cast<NodeId>(nodes_.size());
  NodeRt& rt = nodes_.emplace_back();
  rt.node = std::move(node);
  rt.ctx = std::make_unique<Context>(*this, id);
  rt.metrics = std::make_unique<MetricsRegistry>();
  rt.rng = root_rng_.fork();  // same per-node derivation as the Simulation
  rt.node->bind(*rt.ctx);
  return id;
}

void LocalRunner::add_commit_sink(CommitSink& sink) {
  TBFT_ASSERT_MSG(!started_, "register commit sinks before start()");
  commit_sinks_.push_back(&sink);
}

void LocalRunner::start() {
  TBFT_ASSERT_MSG(!started_, "start() called twice");
  started_ = true;
  for (NodeRt& rt : nodes_) {
    rt.thread = std::thread([this, &rt] { run_node(rt); });
  }
}

void LocalRunner::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  for (NodeRt& rt : nodes_) {
    {
      std::lock_guard<std::mutex> lk(rt.mx);
      rt.stopping = true;
    }
    rt.cv.notify_all();
  }
  for (NodeRt& rt : nodes_) {
    if (rt.thread.joinable()) rt.thread.join();
  }
}

void LocalRunner::enqueue(NodeId dst, InboxEntry entry) {
  NodeRt& rt = nodes_.at(dst);
  {
    std::lock_guard<std::mutex> lk(rt.mx);
    if (rt.stopping) return;  // shutting down: drop, like a closed socket
    rt.inbox.push_back(std::move(entry));
  }
  rt.cv.notify_one();
}

void LocalRunner::deliver(NodeId dst, NodeId src, Payload payload) {
  InboxEntry e;
  e.src = src;
  e.payload = std::move(payload);
  enqueue(dst, std::move(e));
}

void LocalRunner::post(NodeId node, std::function<void()> fn) {
  if (!started_) {
    // No thread exists yet; the caller is the only mutator. Running inline
    // keeps pre-start seeding (mempool pre-loads) trivially ordered before
    // on_start.
    fn();
    return;
  }
  InboxEntry e;
  e.call = std::move(fn);
  enqueue(node, std::move(e));
}

void LocalRunner::publish_commit(NodeId node, std::uint64_t stream, Value value,
                                 std::span<const std::uint8_t> payload) {
  const Commit commit{node, stream, value, payload, now()};
  std::lock_guard<std::mutex> lk(commit_mx_);
  for (CommitSink* sink : commit_sinks_) sink->on_commit(commit);
}

void LocalRunner::run_node(NodeRt& rt) {
  rt.node->on_start();

  std::vector<InboxEntry> batch;
  std::vector<TimerId> fired;
  std::unique_lock<std::mutex> lk(rt.mx);
  while (!rt.stopping) {
    // Due timers fire before the next message batch, every iteration:
    // sustained message arrival must not starve the view timers (the
    // Simulation interleaves by timestamp; a flooding peer must not be
    // able to suppress view changes here). The wheel is owner-thread
    // data; peeking it under the mailbox lock is fine (set/cancel also
    // run on this thread, never concurrently).
    // Wheel deadlines are in the node's skewed clock domain (set_timer).
    const Time next = rt.timers.next_deadline();
    if (next <= node_now(rt)) {
      fired.clear();
      rt.timers.pop_due(node_now(rt), fired);
      lk.unlock();
      for (const TimerId id : fired) rt.node->on_timer(id);
      lk.lock();
      continue;
    }

    if (!rt.inbox.empty()) {
      batch.swap(rt.inbox);
      lk.unlock();
      for (InboxEntry& e : batch) {
        if (e.call) {
          e.call();
        } else {
          rt.node->on_message(e.src, e.payload);
        }
      }
      batch.clear();  // drop payload refs outside the lock
      lk.lock();
      continue;
    }

    const auto woken = [&] { return rt.stopping || !rt.inbox.empty(); };
    if (next == kNever) {
      rt.cv.wait(lk, woken);
    } else {
      // Sleep in real time: invert the skew so a drifting clock's deadline
      // still wakes at the right steady_clock instant.
      rt.cv.wait_until(lk, epoch_ + std::chrono::microseconds(to_real(rt, next)),
                       woken);
    }
  }
}

}  // namespace tbft::runtime
