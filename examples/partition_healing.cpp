// Partial synchrony in action: the network starts partitioned (node 3 cut
// off), the other nodes decide, and after GST the straggler catches up
// through the Decide catch-up path -- demonstrating both safety during
// asynchrony and optimistic responsiveness after it (paper §2, §1.2).
//
//   ./build/examples/partition_healing

#include <cstdio>

#include "core/node.hpp"
#include "sim/adversary.hpp"
#include "sim/runtime.hpp"

using namespace tbft;

int main() {
  const sim::SimTime gst = 300 * sim::kMillisecond;

  sim::SimConfig sc;
  sc.net.gst = gst;
  sc.net.delta_actual = 1 * sim::kMillisecond;
  sc.net.delta_bound = 10 * sim::kMillisecond;
  sim::Simulation simulation(sc);

  // Before GST: everything to/from node 3 is dropped; the rest flows
  // normally. After GST the partition heals (partial synchrony guarantees
  // delivery within Delta).
  simulation.network().set_adversary(
      [gst](const sim::Envelope& env, sim::SimTime at) -> std::optional<sim::DeliveryDecision> {
        if (at < gst && (env.src == 3 || env.dst == 3)) {
          return sim::DeliveryDecision{.drop = true, .deliver_at = 0};
        }
        return sim::DeliveryDecision{.drop = false, .deliver_at = at + sim::kMillisecond};
      });

  std::vector<core::TetraNode*> nodes;
  for (NodeId i = 0; i < 4; ++i) {
    core::TetraConfig cfg;
    cfg.n = 4;
    cfg.f = 1;
    cfg.delta_bound = sc.net.delta_bound;
    cfg.initial_value = Value{100 + i};
    auto node = std::make_unique<core::TetraNode>(cfg);
    nodes.push_back(node.get());
    simulation.add_node(std::move(node));
  }
  simulation.start();

  simulation.run_until(gst);
  std::printf("at GST (t = %lld ms):\n", static_cast<long long>(gst / sim::kMillisecond));
  for (NodeId i = 0; i < 4; ++i) {
    if (nodes[i]->decision()) {
      std::printf("  node %u decided %llu at %.1f ms (inside the majority partition)\n", i,
                  static_cast<unsigned long long>(nodes[i]->decision()->id),
                  static_cast<double>(simulation.trace().decision_of(i)->at) /
                      sim::kMillisecond);
    } else {
      std::printf("  node %u undecided (cut off)\n", i);
    }
  }

  const bool done = simulation.run_until_pred(
      [&] { return nodes[3]->decision().has_value(); }, gst + 10 * sim::kSecond);
  if (!done) {
    std::printf("straggler never caught up -- this should not happen\n");
    return 1;
  }
  const auto d3 = simulation.trace().decision_of(3);
  std::printf(
      "\nafter GST node 3's view-change probe is answered with f+1 Decide\n"
      "notices and it adopts the decision: value %llu at t = %.1f ms\n"
      "(%.1f ms after GST -- proportional to the actual delay, not Delta).\n",
      static_cast<unsigned long long>(d3->value.id),
      static_cast<double>(d3->at) / sim::kMillisecond,
      static_cast<double>(d3->at - gst) / sim::kMillisecond);
  std::printf("agreement across the partition: %s\n",
              simulation.trace().agreement_holds() ? "holds" : "VIOLATED");
  return 0;
}
