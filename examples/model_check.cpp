// Model checking from the command line: exhaustively explore the abstract
// TetraBFT spec (the C++ port of the paper's Appendix-B TLA+ model) within
// given bounds and report the verdict.
//
//   ./build/examples/model_check [rounds] [values] [n] [f]
//   ./build/examples/model_check 2 3          # 4 nodes, 1 Byz, 2 rounds, 3 values

#include <cstdio>
#include <cstdlib>

#include "checker/explorer.hpp"

using namespace tbft::checker;

int main(int argc, char** argv) {
  SpecConfig cfg;
  cfg.rounds = argc > 1 ? std::atoi(argv[1]) : 2;
  cfg.values = argc > 2 ? std::atoi(argv[2]) : 2;
  cfg.n = argc > 3 ? std::atoi(argv[3]) : 4;
  cfg.f = argc > 4 ? std::atoi(argv[4]) : (cfg.n - 1) / 3;
  cfg.byz = cfg.f;

  std::printf("model checking TetraBFT: n=%d f=%d byz=%d rounds=%d values=%d\n", cfg.n, cfg.f,
              cfg.byz, cfg.rounds, cfg.values);
  std::printf("properties: Consistency, NoFutureVote, OneValuePerPhasePerRound,\n");
  std::printf("            VoteHasQuorumInPreviousPhase\n\n");

  const auto res = explore_bfs(Spec(cfg), 8'000'000);
  std::printf("states explored: %llu (canonical, after symmetry reduction)\n",
              static_cast<unsigned long long>(res.states));
  std::printf("transitions:     %llu\n", static_cast<unsigned long long>(res.transitions));
  std::printf("max depth:       %d\n", res.max_depth);
  if (res.violation) {
    std::printf("\nVIOLATION of %s found!\n", res.violated_property.c_str());
    return 1;
  }
  std::printf("\n%s within these bounds.\n",
              res.capped ? "no violation found (state cap reached before exhaustion)"
                         : "all properties hold in every reachable state");
  return 0;
}
