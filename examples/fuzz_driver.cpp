// Chaos fuzz driver: replay one seed or sweep a batch.
//
//   ./build/fuzz_driver --seed=N            replay one scenario, verbose
//   ./build/fuzz_driver --first=A --count=K sweep seeds [A, A+K)
//   ./build/fuzz_driver --count=K           sweep [1, 1+K) (default K=50)
//
// Extra flags:
//   --scratch=DIR     durable-chain scratch root (default: fuzz-scratch)
//   --keep            keep work dirs of failing seeds for inspection
//   --fail-file=PATH  append one "fuzz_driver --seed=N" line per failure
//   --quiet           batch mode: only print failures and the summary
//
// Every failure prints a one-line reproducer; exit code is the number of
// failing seeds (capped at 125).

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chaos/fuzzer.hpp"

using namespace tbft;

namespace {

bool parse_u64(const char* arg, const char* name, std::uint64_t& out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  out = std::strtoull(arg + len + 1, nullptr, 10);
  return true;
}

bool parse_str(const char* arg, const char* name, std::string& out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  out = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 0;
  bool have_seed = false;
  std::uint64_t first = 1;
  std::uint64_t count = 50;
  std::string scratch = "fuzz-scratch";
  std::string fail_file;
  bool keep = false;
  bool verbose = true;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (parse_u64(a, "--seed", seed)) {
      have_seed = true;
    } else if (parse_u64(a, "--first", first) || parse_u64(a, "--count", count) ||
               parse_str(a, "--scratch", scratch) ||
               parse_str(a, "--fail-file", fail_file)) {
    } else if (std::strcmp(a, "--keep") == 0) {
      keep = true;
    } else if (std::strcmp(a, "--quiet") == 0) {
      verbose = false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a);
      return 2;
    }
  }

  if (have_seed) {
    const chaos::ScenarioPlan plan = chaos::draw_plan(seed);
    std::printf("plan: %s\n", plan.describe().c_str());
    for (const chaos::ChurnEvent& ev : plan.churn) {
      std::printf("  churn: node %u down at %" PRId64 "ms, up at %" PRId64 "ms\n",
                  ev.node, ev.down_at / sim::kMillisecond, ev.up_at / sim::kMillisecond);
    }
    const chaos::FuzzResult r = chaos::fuzz_one(seed, scratch, keep);
    r.verdict.report.print("  workload");
    std::printf(
        "  consistent=%s drained=%s progressed=%s crashes=%u restarts=%u "
        "max_finalized=%" PRIu64 " elapsed=%" PRId64 "ms trace=%016" PRIx64 "\n",
        r.verdict.chains_consistent ? "yes" : "NO", r.verdict.drained ? "yes" : "NO",
        r.verdict.progressed ? "yes" : "NO", r.verdict.crashes, r.verdict.restarts,
        static_cast<std::uint64_t>(r.verdict.max_finalized),
        r.verdict.elapsed / sim::kMillisecond, r.verdict.trace_digest);
    std::printf("%s seed=%" PRIu64 "%s%s\n", r.passed ? "PASS" : "FAIL", seed,
                r.passed ? "" : " failure=", r.failure.c_str());
    return r.passed ? 0 : 1;
  }

  const chaos::FuzzBatchResult batch =
      chaos::fuzz_batch(first, count, scratch, verbose, keep);
  if (!fail_file.empty() && !batch.failures.empty()) {
    if (std::FILE* f = std::fopen(fail_file.c_str(), "a")) {
      for (const chaos::FuzzResult& r : batch.failures) {
        std::fprintf(f, "%s  # %s -> %s\n", r.reproducer().c_str(), r.plan.c_str(),
                     r.failure.c_str());
      }
      std::fclose(f);
    }
  }
  std::printf("fuzz: %" PRIu64 "/%" PRIu64 " seeds passed (first=%" PRIu64 ")\n",
              batch.ran - batch.failed, batch.ran, first);
  return batch.failed > 125 ? 125 : static_cast<int>(batch.failed);
}
