// Workload demo: clients generating load against the multishot TetraBFT
// pipeline, end to end -- open-loop Poisson arrivals, leader batching,
// bounded mempools, and submit->commit latency accounting.
//
//   ./build/workload_demo
//
// Two runs are shown: a clean steady-state run, and the same load with the
// network partitioned until GST -- every request admitted during the
// partition commits after healing, exactly once.

#include <cstdio>

#include "workload/scenarios.hpp"

using namespace tbft;

int main() {
  workload::ScenarioOptions opts;
  opts.preset = workload::Preset::kSteadyState;
  opts.seed = 7;
  opts.load_duration = 300 * sim::kMillisecond;
  opts.rate_per_sec = 1000;
  opts.clients = 2;

  std::printf("steady state: 2 open-loop clients x 1000 req/s for 300 ms, n=4\n");
  const auto steady = workload::run_scenario(opts);
  steady.report.print("  steady-state");
  std::printf("  all admitted committed: %s, exactly once: %s, chains consistent: %s\n\n",
              steady.all_admitted_committed ? "yes" : "NO",
              steady.report.exactly_once() ? "yes" : "NO",
              steady.chains_consistent ? "yes" : "NO");

  opts.preset = workload::Preset::kPartitionDuringLoad;
  std::printf("partition during load: no quorum until GST=150 ms, same load\n");
  const auto part = workload::run_scenario(opts);
  part.report.print("  partition");
  std::printf("  all admitted committed: %s, exactly once: %s, chains consistent: %s\n",
              part.all_admitted_committed ? "yes" : "NO",
              part.report.exactly_once() ? "yes" : "NO",
              part.chains_consistent ? "yes" : "NO");
  std::printf("  latency p50 %.1f ms vs max %.1f ms -- the tail is the partition\n",
              part.report.latency_p50_ms, part.report.latency_max_ms);

  const bool ok = steady.all_admitted_committed && steady.report.exactly_once() &&
                  part.all_admitted_committed && part.report.exactly_once();
  return ok ? 0 : 1;
}
