// Multi-process socket cluster demo: fork 4 OS processes, each hosting one
// TetraBFT replica behind a runtime::SocketHost; every protocol message
// crosses a real TCP connection on loopback. The parent plays deployment
// coordinator -- it collects each child's ephemeral listen port over a pipe,
// broadcasts the full port map, and the children wire up and run consensus
// under client load.
//
//   ./build/socket_cluster
//
// Each child submits its own transactions, then waits until its OWN commit
// stream contains every transaction from every process exactly once. An exit
// barrier (over the pipes) keeps all replicas alive until the slowest one is
// done; only then do the children stop, digest their finalized chains
// slot-by-slot, and report. The parent exits 0 iff all four processes
// finished, committed nonzero slots, and produced IDENTICAL chain digests --
// the multi-process analogue of multishot::chains_prefix_consistent.
// (CI runs this binary as the socket-transport smoke test.)

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/hash.hpp"
#include "tetrabft.hpp"

using namespace tbft;

namespace {

constexpr std::uint32_t kNodes = 4;
constexpr std::uint32_t kTxPerNode = 16;
constexpr std::uint32_t kTotalTx = kNodes * kTxPerNode;

/// Transaction `j` as submitted by process `origin`: self-describing bytes
/// so any commit stream can attribute it.
std::vector<std::uint8_t> tx_bytes(std::uint32_t origin, std::uint32_t j) {
  return {'s', 'k', static_cast<std::uint8_t>(origin), static_cast<std::uint8_t>(j >> 8),
          static_cast<std::uint8_t>(j), static_cast<std::uint8_t>(origin * 31 + j * 7)};
}

bool read_full(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (len > 0) {
    const ssize_t got = ::read(fd, p, len);
    if (got <= 0) return false;
    p += got;
    len -= static_cast<std::size_t>(got);
  }
  return true;
}

bool write_full(int fd, const void* buf, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (len > 0) {
    const ssize_t put = ::write(fd, p, len);
    if (put <= 0) return false;
    p += put;
    len -= static_cast<std::size_t>(put);
  }
  return true;
}

/// What each child reports after the exit barrier.
struct ChildReport {
  std::uint64_t chain_digest{0};  // order-sensitive digest of slots 1..kTotalTx
  std::uint64_t finalized{0};
  std::uint8_t ok{0};
};

/// One replica process: wire up from the port map, run under load, verify
/// every transaction commits exactly once in this replica's own stream.
int run_child(NodeId id, int to_parent, int from_parent) {
  ClusterBuilder b;
  b.nodes(kNodes)
      .seed(7)
      .delta_bound(500 * runtime::kMillisecond)  // generous: loaded CI machines
      .batching(/*max_txs=*/1, /*max_bytes=*/4096)  // one tx per slot
      .forwarding(false);
  auto node = b.build_socket_node(id);

  // --- ephemeral-port exchange ----------------------------------------------
  const std::uint16_t my_port = node->port();
  if (!write_full(to_parent, &my_port, sizeof my_port)) return 1;
  std::uint16_t ports[kNodes] = {};
  if (!read_full(from_parent, ports, sizeof ports)) return 1;
  for (NodeId peer = 0; peer < kNodes; ++peer) {
    if (peer != id) node->set_peer_endpoint(peer, {"127.0.0.1", ports[peer]});
  }

  // --- commit accounting: every tx, exactly once, in MY stream --------------
  std::mutex mx;
  std::vector<std::uint32_t> times_seen(kTotalTx, 0);  // guarded by mx / hub lock
  std::uint64_t commits = 0;
  node->on_commit([&](const runtime::Commit& c) {
    std::lock_guard<std::mutex> lk(mx);
    ++commits;
    for (const auto& frame : multishot::payload_frames(c.payload)) {
      if (frame.size() < 5 || frame[0] != 's' || frame[1] != 'k') continue;
      const std::uint32_t origin = frame[2];
      const std::uint32_t j =
          (static_cast<std::uint32_t>(frame[3]) << 8) | frame[4];
      if (origin < kNodes && j < kTxPerNode) ++times_seen[origin * kTxPerNode + j];
    }
  });

  node->start();
  for (std::uint32_t j = 0; j < kTxPerNode; ++j) {
    node->submit(tx_bytes(id, j));
  }

  const bool synced = node->wait_for(
      [&] {
        std::lock_guard<std::mutex> lk(mx);
        for (const std::uint32_t seen : times_seen) {
          if (seen == 0) return false;
        }
        return true;
      },
      60 * runtime::kSecond);

  // --- exit barrier: no replica stops until the slowest is done -------------
  const std::uint8_t sync_byte = synced ? 1 : 0;
  write_full(to_parent, &sync_byte, sizeof sync_byte);
  std::uint8_t release = 0;
  read_full(from_parent, &release, sizeof release);
  node->stop();

  // --- report: exactly-once + an order-sensitive digest of the chain --------
  ChildReport report;
  bool exactly_once = synced;
  for (const std::uint32_t seen : times_seen) exactly_once = exactly_once && seen == 1;
  multishot::MultishotNode& replica = node->replica();
  report.finalized = replica.finalized_count();
  std::uint64_t digest = 0x736f636b65743464ULL;  // arbitrary nonzero start
  bool chain_complete = true;
  for (Slot s = 1; s <= kTotalTx; ++s) {
    const multishot::Block* blk = replica.block_at(s);
    if (blk == nullptr) {
      chain_complete = false;
      break;
    }
    digest = hash_combine(digest, blk->hash());
  }
  report.chain_digest = digest;
  report.ok = (exactly_once && chain_complete) ? 1 : 0;
  const runtime::NetStats& ns = node->host().net_stats();
  std::printf(
      "child %u: synced=%d exactly_once=%d finalized=%llu commits=%llu "
      "frames rx/tx=%llu/%llu handshakes=%llu redials=%llu dropped=%llu\n",
      id, int(synced), int(exactly_once),
      static_cast<unsigned long long>(report.finalized),
      static_cast<unsigned long long>(commits),
      static_cast<unsigned long long>(ns.frames_rx.load()),
      static_cast<unsigned long long>(ns.frames_tx.load()),
      static_cast<unsigned long long>(ns.handshakes.load()),
      static_cast<unsigned long long>(ns.dials.load()),
      static_cast<unsigned long long>(ns.queue_dropped.load()));
  write_full(to_parent, &report, sizeof report);
  return report.ok == 1 ? 0 : 1;
}

}  // namespace

int main() {
  int c2p[kNodes][2];
  int p2c[kNodes][2];
  pid_t pids[kNodes];
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    if (::pipe(c2p[i]) != 0 || ::pipe(p2c[i]) != 0) {
      std::perror("pipe");
      return 1;
    }
  }
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    pids[i] = ::fork();
    if (pids[i] < 0) {
      std::perror("fork");
      return 1;
    }
    if (pids[i] == 0) {
      // Child i keeps only its own pipe ends.
      for (std::uint32_t j = 0; j < kNodes; ++j) {
        ::close(c2p[j][0]);
        ::close(p2c[j][1]);
        if (j != i) {
          ::close(c2p[j][1]);
          ::close(p2c[j][0]);
        }
      }
      const int rc = run_child(i, c2p[i][1], p2c[i][0]);
      std::fflush(stdout);
      ::_exit(rc);
    }
  }
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    ::close(c2p[i][1]);
    ::close(p2c[i][0]);
  }

  // Port exchange: gather each child's ephemeral port, broadcast the map.
  std::uint16_t ports[kNodes] = {};
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    if (!read_full(c2p[i][0], &ports[i], sizeof ports[i])) {
      std::fprintf(stderr, "child %u died before reporting its port\n", i);
      return 1;
    }
  }
  std::printf("cluster ports:");
  for (std::uint32_t i = 0; i < kNodes; ++i) std::printf(" %u", ports[i]);
  std::printf("\n");
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    if (!write_full(p2c[i][1], ports, sizeof ports)) return 1;
  }

  // Exit barrier: wait until every child synced, then release all at once.
  bool all_synced = true;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    std::uint8_t sync_byte = 0;
    if (!read_full(c2p[i][0], &sync_byte, sizeof sync_byte) || sync_byte != 1) {
      std::fprintf(stderr, "child %u failed to sync\n", i);
      all_synced = false;
    }
  }
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    const std::uint8_t release = 1;
    write_full(p2c[i][1], &release, sizeof release);
  }

  // Collect reports + exit codes; verify cross-process chain agreement.
  ChildReport reports[kNodes] = {};
  bool ok = all_synced;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    if (!read_full(c2p[i][0], &reports[i], sizeof reports[i])) {
      std::fprintf(stderr, "child %u died before reporting\n", i);
      ok = false;
    }
  }
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    int status = 0;
    ::waitpid(pids[i], &status, 0);
    const bool child_ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!child_ok) {
      if (WIFSIGNALED(status)) {
        std::fprintf(stderr, "child %u killed by signal %d\n", i, WTERMSIG(status));
      } else if (WIFEXITED(status)) {
        std::fprintf(stderr, "child %u exited %d\n", i, WEXITSTATUS(status));
      }
    }
    ok = ok && child_ok && reports[i].ok == 1 && reports[i].finalized >= kTotalTx;
  }
  bool digests_agree = true;
  for (std::uint32_t i = 1; i < kNodes; ++i) {
    digests_agree = digests_agree && reports[i].chain_digest == reports[0].chain_digest;
  }
  ok = ok && digests_agree;
  std::printf(
      "%u processes, %u transactions: chain digests %s (%#llx), all >= %u slots: %s\n",
      kNodes, kTotalTx, digests_agree ? "AGREE" : "DIVERGE",
      static_cast<unsigned long long>(reports[0].chain_digest), kTotalTx,
      ok ? "yes" : "NO");
  std::printf("multi-process socket cluster: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
