// Byzantine-leader recovery: the view-0 leader equivocates (proposes
// different values to different halves of the network). No value reaches a
// quorum, the 9*Delta timers fire, the nodes change views, and view 1's
// honest leader drives a decision -- with safety intact throughout.
//
//   ./build/examples/byzantine_recovery

#include <cstdio>

#include "core/byzantine.hpp"
#include "sim/runtime.hpp"

using namespace tbft;

int main() {
  sim::SimConfig sc;
  sc.net.delta_actual = 1 * sim::kMillisecond;
  sc.net.delta_bound = 10 * sim::kMillisecond;
  sim::Simulation simulation(sc);

  std::vector<core::TetraNode*> nodes;
  for (NodeId i = 0; i < 4; ++i) {
    core::TetraConfig cfg;
    cfg.n = 4;
    cfg.f = 1;
    cfg.delta_bound = sc.net.delta_bound;
    cfg.initial_value = Value{100 + i};
    std::unique_ptr<core::TetraNode> node;
    if (i == 0) {
      // The view-0 leader: sends value 666 to nodes 0-1 and 667 to 2-3.
      node = std::make_unique<core::EquivocatingLeaderNode>(cfg, Value{666}, Value{667});
      std::printf("node 0: Byzantine (equivocating leader of view 0)\n");
    } else {
      node = std::make_unique<core::TetraNode>(cfg);
      std::printf("node %u: honest, initial value %u\n", i, 100 + i);
    }
    nodes.push_back(node.get());
    simulation.add_node(std::move(node));
  }

  simulation.start();
  const bool done = simulation.run_until_pred(
      [&] {
        for (NodeId i = 1; i < 4; ++i) {
          if (!nodes[i]->decision()) return false;
        }
        return true;
      },
      10 * sim::kSecond);

  std::printf("\ntimeline:\n");
  std::printf("  t=0        view 0 starts; Byzantine leader equivocates 666/667\n");
  std::printf("  t=1..2ms   vote-1 splits 2/2 -- no quorum, no vote-2 anywhere\n");
  std::printf("  t=90ms     9*Delta timers fire; view-change messages for view 1\n");
  std::printf("  t=91ms     n-f view-changes received; every node enters view 1\n");
  std::printf("  t=92ms     suggest/proof exchanged; leader 1 finds a safe value\n");
  std::printf("  t=93..97ms proposal + four vote phases\n\n");

  if (!done) {
    std::printf("recovery failed -- this should not happen\n");
    return 1;
  }
  for (NodeId i = 1; i < 4; ++i) {
    const auto d = simulation.trace().decision_of(i);
    std::printf("node %u decided value %llu at t = %.1f ms (view %lld)\n", i,
                static_cast<unsigned long long>(nodes[i]->decision()->id),
                static_cast<double>(d->at) / sim::kMillisecond,
                static_cast<long long>(nodes[i]->current_view()));
  }
  std::printf("\nagreement: %s; the Byzantine values 666/667 were never decided.\n",
              simulation.trace().agreement_holds() ? "holds" : "VIOLATED");
  return 0;
}
