// Quickstart: run multi-shot TetraBFT through the public facade
// (tetrabft.hpp) -- first as a real-time in-process cluster (one thread per
// node, wall-clock time), then the same configuration under the
// deterministic simulator. The protocol nodes are the identical binaries in
// both runs; only the Host behind the runtime API changes.
//
//   ./build/quickstart

#include <atomic>
#include <cstdio>

#include "tetrabft.hpp"

using namespace tbft;

int main() {
  constexpr std::uint32_t kTxs = 32;

  // 1. Configure once: four nodes (one fault tolerated), one transaction
  //    per block. Pre-start seeding + forwarding off + a generous Delta is
  //    the *deterministic* configuration (the one the cross-runner
  //    equivalence test pins down): transaction j lands in slot j+1 under
  //    any host, so the two chains below must match block for block.
  ClusterBuilder builder;
  builder.nodes(4)
      .delta_bound(1 * runtime::kSecond)
      .batching(/*max_txs=*/1, /*max_bytes=*/4096)
      .forwarding(false);

  // 2. Real-time cluster: node threads, mutex mailboxes, steady-clock
  //    timers. Commits stream back on replica threads; slots finalize in
  //    order, so replica 0 committing slot kTxs means every transaction
  //    (slots 1..kTxs) is in its chain.
  auto cluster = builder.build_local();
  std::atomic<std::uint64_t> tip0{0};
  std::atomic<std::int64_t> last_commit_us{0};
  cluster->on_commit([&](const runtime::Commit& c) {
    if (c.node == 0) {
      tip0.store(c.stream);
      last_commit_us.store(c.at);
    }
  });

  std::printf("submitting %u transactions to a 4-node real-time cluster...\n", kTxs);
  for (std::uint32_t j = 0; j < kTxs; ++j) {
    cluster->node(j % 4).submit({'t', 'x', static_cast<std::uint8_t>(j)});
  }
  cluster->start();
  const bool done =
      cluster->wait_for([&] { return tip0.load() >= kTxs; }, 30 * runtime::kSecond);
  cluster->stop();
  if (!done) {
    std::printf("cluster did not commit everything in time -- this should not happen\n");
    return 1;
  }

  std::printf("replica 0 finalized %llu slots in %.2f ms of wall-clock time\n",
              static_cast<unsigned long long>(cluster->replica(0).finalized_count()),
              static_cast<double>(last_commit_us.load()) / runtime::kMillisecond);

  // 3. The same configuration under the simulator: virtual time, seeded,
  //    deterministic -- the verification tool of record.
  auto sim_cluster = builder.build_sim();
  for (std::uint32_t j = 0; j < kTxs; ++j) {
    sim_cluster->submit(j % 4, {'t', 'x', static_cast<std::uint8_t>(j)});
  }
  sim_cluster->start();
  if (!sim_cluster->run_until_all_finalized(kTxs, 60 * runtime::kSecond)) {
    std::printf("simulation did not finalize -- this should not happen\n");
    return 1;
  }
  std::printf("simulation finalized %llu slots in %lld ms of *simulated* time "
              "(%llu messages, %llu bytes, no signatures anywhere)\n",
              static_cast<unsigned long long>(sim_cluster->replica(0).finalized_count()),
              static_cast<long long>(sim_cluster->simulation().now() / runtime::kMillisecond),
              static_cast<unsigned long long>(sim_cluster->simulation().trace().total_messages()),
              static_cast<unsigned long long>(sim_cluster->simulation().trace().total_bytes()));

  // 4. Same protocol, same seeds, two hosts: the chains agree block for
  //    block (the cross-runner equivalence the test suite enforces).
  std::vector<multishot::MultishotNode*> chains;
  for (NodeId i = 0; i < 4; ++i) chains.push_back(&cluster->replica(i));
  for (NodeId i = 0; i < 4; ++i) chains.push_back(&sim_cluster->replica(i));
  const bool consistent = multishot::chains_prefix_consistent(chains);
  std::printf("real-time and simulated chains consistent: %s\n",
              consistent ? "yes" : "NO (bug!)");
  return consistent ? 0 : 1;
}
