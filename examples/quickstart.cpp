// Quickstart: run single-shot TetraBFT among four simulated nodes (one
// fault budget) and watch them decide the leader's value in exactly five
// message delays.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/node.hpp"
#include "sim/runtime.hpp"

using namespace tbft;

int main() {
  // 1. A simulated partially-synchronous network: synchronous from the
  //    start (GST = 0), actual delay 1ms, known bound Delta = 10ms.
  sim::SimConfig sc;
  sc.net.gst = 0;
  sc.net.delta_actual = 1 * sim::kMillisecond;
  sc.net.delta_bound = 10 * sim::kMillisecond;
  sim::Simulation simulation(sc);

  // 2. Four TetraBFT nodes; node i proposes value 100+i when it leads.
  //    Round-robin leadership makes node 0 the view-0 leader.
  std::vector<core::TetraNode*> nodes;
  for (NodeId i = 0; i < 4; ++i) {
    core::TetraConfig cfg;
    cfg.n = 4;
    cfg.f = 1;
    cfg.delta_bound = sc.net.delta_bound;
    cfg.initial_value = Value{100 + i};
    auto node = std::make_unique<core::TetraNode>(cfg);
    nodes.push_back(node.get());
    simulation.add_node(std::move(node));
  }

  // 3. Run until everyone decided.
  simulation.start();
  const bool done = simulation.run_until_pred(
      [&] {
        for (auto* n : nodes) {
          if (!n->decision()) return false;
        }
        return true;
      },
      sim::kSecond);

  if (!done) {
    std::printf("no decision within the deadline -- this should not happen\n");
    return 1;
  }

  std::printf("all four nodes decided:\n");
  for (NodeId i = 0; i < 4; ++i) {
    const auto d = simulation.trace().decision_of(i);
    std::printf("  node %u -> value %llu at t = %lld us (= %lld message delays)\n", i,
                static_cast<unsigned long long>(nodes[i]->decision()->id),
                static_cast<long long>(d->at),
                static_cast<long long>(d->at / sc.net.delta_actual));
  }
  std::printf("\nproposal + vote-1..vote-4 = 5 message delays (paper Table 1),\n");
  std::printf("%llu network messages, %llu bytes, no signatures anywhere.\n",
              static_cast<unsigned long long>(simulation.trace().total_messages()),
              static_cast<unsigned long long>(simulation.trace().total_bytes()));
  return 0;
}
