// Crash-restart demo: a real-time durable cluster is SIGKILLed mid-load
// (no shutdown hook runs, exactly like a crashed process), then a second
// process builds a cluster over the same data directories. Recovery must
// restore every replica's finalized chain from the checkpoint + WAL tail,
// keep the chains prefix-consistent, and resume finalizing fresh
// transactions on top.
//
//   ./build/crash_restart_demo [data_dir]
//
// Exit code 0 iff recovery and post-restart liveness both hold (the CI
// sanitizer job runs this as its kill-and-restart smoke test).

#include <sys/types.h>
#include <sys/wait.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "tetrabft.hpp"

using namespace tbft;
namespace fs = std::filesystem;

namespace {

std::vector<std::uint8_t> tx_bytes(std::uint32_t j) {
  return {'d', 'm', static_cast<std::uint8_t>(j >> 8), static_cast<std::uint8_t>(j),
          static_cast<std::uint8_t>(j * 31)};
}

ClusterBuilder demo_builder(const std::string& dir) {
  ClusterBuilder b;
  b.nodes(4)
      .delta_bound(20 * runtime::kMillisecond)
      .storage_tail(64)
      .commit_epochs(8)
      .data_dir(dir)
      .checkpoint_every(8)
      .wal_flush_every(1)      // every append durable: kill -9 loses nothing
      .wal_segment_bytes(4096);  // small segments: rotation + reclaim live too
  return b;
}

/// First life: runs under continuous load until the parent kills the process.
[[noreturn]] void run_victim(const std::string& dir) {
  auto cluster = demo_builder(dir).build_local();
  cluster->start();
  for (std::uint32_t j = 0;; ++j) {
    cluster->node(j % 4).submit(tx_bytes(j));
    usleep(2000);  // ~500 tx/sec across the cluster
  }
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path dir =
      argc > 1 ? fs::path(argv[1]) : fs::temp_directory_path() / "tbft_crash_restart_demo";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (pid == 0) run_victim(dir.string());

  // Let the victim finalize well past its first durable checkpoints, then
  // kill it the hard way -- no destructor, no flush, mid-WAL-write.
  sleep(3);
  kill(pid, SIGKILL);
  int status = 0;
  waitpid(pid, &status, 0);
  std::printf("victim pid %d killed with SIGKILL (status %d)\n", pid, status);

  // Second life: rebuild over the same directories and inspect pre-start.
  auto cluster = demo_builder(dir.string()).build_local();
  bool ok = true;
  Slot min_count = 0;
  for (NodeId i = 0; i < 4; ++i) {
    const Slot count = cluster->replica(i).finalized_count();
    const storage::DurableChain* durable = cluster->durable(i);
    std::printf("node %u recovered: %llu finalized slots, checkpoint at %llu, "
                "%llu WAL records replayed%s\n",
                i, static_cast<unsigned long long>(count),
                static_cast<unsigned long long>(cluster->replica(i).chain().checkpoint().slot),
                static_cast<unsigned long long>(durable->wal_stats().recovered),
                durable->wal_stats().truncated_tail ? " (torn tail truncated)" : "");
    ok = ok && count > 0;
    min_count = i == 0 ? count : std::min(min_count, count);
  }
  {
    std::vector<multishot::MultishotNode*> replicas;
    for (NodeId i = 0; i < 4; ++i) replicas.push_back(&cluster->replica(i));
    const bool consistent = multishot::chains_prefix_consistent(replicas);
    std::printf("recovered chains prefix-consistent: %s\n", consistent ? "yes" : "NO");
    ok = ok && consistent;
  }

  // Liveness on top of the recovered prefix: fresh transactions finalize.
  // Replica state is off-limits while the runner is live, so inclusion is
  // observed through the commit stream (the supported runtime boundary).
  std::vector<std::vector<std::uint8_t>> fresh;
  for (std::uint32_t j = 0; j < 8; ++j) {
    fresh.push_back(tx_bytes(1u << 14 | j));  // disjoint from the victim's ids
  }
  std::vector<std::uint32_t> seen(4, 0);  // per-node bitmask, under the commit lock
  cluster->on_commit([&](const runtime::Commit& c) {
    for (const auto& frame : multishot::payload_frames(c.payload)) {
      for (std::size_t k = 0; k < fresh.size(); ++k) {
        if (frame.size() == fresh[k].size() &&
            std::equal(frame.begin(), frame.end(), fresh[k].begin())) {
          seen[c.node] |= 1u << k;
        }
      }
    }
  });
  cluster->start();
  for (std::uint32_t j = 0; j < fresh.size(); ++j) {
    cluster->node(j % 4).submit(fresh[j]);
  }
  const std::uint32_t all = (1u << fresh.size()) - 1;
  const bool resumed = cluster->wait_for(
      [&] {
        return std::all_of(seen.begin(), seen.end(),
                           [all](std::uint32_t m) { return m == all; });
      },
      30 * runtime::kSecond);
  cluster->stop();
  std::printf("restarted cluster finalized %zu fresh transactions: %s\n", fresh.size(),
              resumed ? "yes" : "NO");
  std::printf("chain resumed at slot %llu and grew to %llu\n",
              static_cast<unsigned long long>(min_count),
              static_cast<unsigned long long>(cluster->replica(0).finalized_count()));
  ok = ok && resumed;

  fs::remove_all(dir);
  std::printf("%s\n", ok ? "CRASH-RESTART RECOVERY OK" : "CRASH-RESTART RECOVERY FAILED");
  return ok ? 0 : 1;
}
