// Blockchain demo: pipelined multi-shot TetraBFT (paper §6) building a
// chain of blocks, one notarization per message delay, with client
// transactions flowing into blocks and out as finalized state.
//
//   ./build/examples/blockchain_demo

#include <cstdio>
#include <string>

#include "multishot/node.hpp"
#include "sim/runtime.hpp"

using namespace tbft;

int main() {
  sim::SimConfig sc;
  sc.net.delta_actual = 1 * sim::kMillisecond;
  sc.net.delta_bound = 10 * sim::kMillisecond;
  sim::Simulation simulation(sc);

  multishot::MultishotConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.delta_bound = sc.net.delta_bound;
  cfg.max_slots = 20;

  std::vector<multishot::MultishotNode*> nodes;
  for (NodeId i = 0; i < cfg.n; ++i) {
    auto node = std::make_unique<multishot::MultishotNode>(cfg);
    nodes.push_back(node.get());
    simulation.add_node(std::move(node));
  }

  // Submit a few "transactions" to every node before the run; whichever
  // leader proposes next includes them.
  const std::vector<std::string> txs = {"alice->bob:10", "bob->carol:4", "carol->dave:1"};
  for (auto* node : nodes) {
    for (const auto& tx : txs) {
      node->submit_tx({tx.begin(), tx.end()});
    }
  }

  simulation.start();
  simulation.run_until_pred(
      [&] {
        for (auto* n : nodes) {
          if (n->finalized_count() < 12) return false;
        }
        return true;
      },
      10 * sim::kSecond);

  const multishot::MultishotNode* node0 = nodes[0];
  const Slot count = node0->finalized_count();
  std::printf("finalized chain at node 0 (%llu blocks):\n",
              static_cast<unsigned long long>(count));
  for (Slot s = node0->chain().tail_first(); s <= count; ++s) {
    const multishot::Block& b = *node0->block_at(s);
    std::printf("  slot %2llu  proposer %u  payload %3zu B  hash %016llx  parent %016llx\n",
                static_cast<unsigned long long>(b.slot), b.proposer, b.payload.size(),
                static_cast<unsigned long long>(b.hash()),
                static_cast<unsigned long long>(b.parent_hash));
  }

  std::printf("\ntransaction inclusion:\n");
  for (const auto& tx : txs) {
    const std::vector<std::uint8_t> bytes(tx.begin(), tx.end());
    bool everywhere = true;
    for (auto* n : nodes) everywhere = everywhere && n->tx_finalized(bytes);
    std::printf("  %-16s %s\n", tx.c_str(),
                everywhere ? "finalized on every node" : "NOT finalized everywhere");
  }

  // Consistency check across nodes (Definition 2 of the paper).
  const bool consistent = multishot::chains_prefix_consistent(nodes);
  std::printf("\nchains prefix-consistent across all nodes: %s\n", consistent ? "yes" : "NO");
  std::printf("throughput: %llu blocks in %lld ms of simulated time (1 block per delay)\n",
              static_cast<unsigned long long>(count),
              static_cast<long long>(simulation.trace().decision_of(0, count)->at /
                                     sim::kMillisecond));
  return 0;
}
