#!/usr/bin/env python3
"""Diff fresh BENCH_*.json files against the tracked copies in the repo root.

The benches drop one JSON per run (bench_json.hpp); the repo tracks a
reference copy of each at the root. This script compares a fresh run against
those references and fails (exit 1) when a *gated* headline metric regresses
by more than the threshold (default 20%).

Gating policy: only metrics that are deterministic at equal config are
gated --
  - simulation-time metrics (bench_workload): pure functions of seed +
    config, so any drift at equal config is a real code change;
  - exact counters (allocs_per_*, encodes/copies per broadcast,
    resident_bytes_end): deterministic.
Anything wall-clock-derived is reported by the benches but never gated
here: raw rates are swamped by shared-runner noise, and even same-run
ratios (speedup_vs_*, index_speedup) halve across allocators/CPUs. Those
ratios already have absolute floors enforced by the bench binaries' own
exit codes, so this diff does not re-gate them.

A bench is only compared when its config keys match the tracked copy
(a smoke run at different --rate/--duration is incomparable); mismatches
are reported and skipped, not failed. Metrics present on only one side
(a new or retired key) are likewise reported and skipped.

Usage: tools/bench_compare.py [--tracked DIR] [--fresh DIR] [--threshold F]
"""

import argparse
import glob
import json
import os
import sys

# Per-bench compare spec: config keys that must match for the comparison to
# mean anything, and gated metrics with their good direction.
SPECS = {
    "workload": {
        "config": ["n", "seed", "duration_ms", "rate_per_sec", "clients",
                   "outstanding", "request_bytes"],
        "metrics": {
            "open_tx_per_sec": "higher",
            "closed_tx_per_sec": "higher",
            "open_latency_p99_ms": "lower",
            "closed_latency_p99_ms": "lower",
        },
        # The frontier grid is gated cell by cell (also sim-deterministic).
        "metric_patterns": [("frontier_", "_tx_per_sec", "higher"),
                            ("frontier_", "_latency_p99_ms", "lower")],
    },
    "hotpath": {
        "config": ["n", "rounds"],
        "metrics": {
            "allocs_per_delivery": "lower",
            "encodes_per_broadcast": "lower",
            "buffer_copies_per_broadcast": "lower",
        },
    },
    "consensus": {
        "config": ["slots", "n"],
        "metrics": {
            "allocs_per_slot": "lower",
        },
    },
    "storage": {
        "config": ["slots", "gap"],
        "metrics": {
            "resident_bytes_end": "lower",
        },
    },
    # bench_socket: real-time TCP throughput/latency; nothing stable to gate.
    "socket": {"config": [], "metrics": {}},
    # bench_sharding: wall-clock scaling sweep; the >= 6x S=8/S=1 floor and
    # the exactly-once gates live in the binary's exit code, not here.
    "sharding": {
        "config": ["n", "seed", "rate_per_shard", "window_ms", "tx_bytes",
                   "batch_txs", "batch_bytes"],
        "metrics": {},
    },
}


def bench_name(path):
    base = os.path.basename(path)
    return base[len("BENCH_"):-len(".json")]


def gated_metrics(spec, tracked, fresh):
    metrics = dict(spec.get("metrics", {}))
    for prefix, suffix, direction in spec.get("metric_patterns", []):
        for key in tracked:
            if key.startswith(prefix) and key.endswith(suffix):
                metrics[key] = direction
    return metrics


def compare(name, tracked, fresh, threshold):
    """Returns (failures, skipped_reason_or_None)."""
    spec = SPECS.get(name)
    if spec is None:
        return [], "no compare spec"
    for key in spec["config"]:
        if tracked.get(key) != fresh.get(key):
            return [], (f"config mismatch ({key}: tracked={tracked.get(key)} "
                        f"fresh={fresh.get(key)})")
    failures = []
    for key, direction in sorted(gated_metrics(spec, tracked, fresh).items()):
        if key not in tracked or key not in fresh:
            print(f"  {name}.{key}: only on one side, skipped")
            continue
        ref, got = float(tracked[key]), float(fresh[key])
        if direction == "higher":
            bad = got < ref * (1.0 - threshold)
        else:
            bad = got > ref * (1.0 + threshold)
        delta = (got - ref) / ref * 100.0 if ref != 0 else 0.0
        marker = "REGRESSION" if bad else "ok"
        print(f"  {name}.{key}: tracked={ref:g} fresh={got:g} "
              f"({delta:+.1f}%, want {direction}) {marker}")
        if bad:
            failures.append(f"{name}.{key}")
    return failures, None


def main():
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--tracked", default=repo_root,
                    help="directory with the reference BENCH_*.json (repo root)")
    ap.add_argument("--fresh", default=os.path.join(repo_root, "build"),
                    help="directory with the fresh run's BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="relative regression that fails the diff (0.20 = 20%%)")
    args = ap.parse_args()

    fresh_files = sorted(glob.glob(os.path.join(args.fresh, "BENCH_*.json")))
    if not fresh_files:
        print(f"bench_compare: no BENCH_*.json under {args.fresh}", file=sys.stderr)
        return 2

    all_failures = []
    compared = 0
    for path in fresh_files:
        name = bench_name(path)
        tracked_path = os.path.join(args.tracked, os.path.basename(path))
        if not os.path.exists(tracked_path):
            # First run of a new bench: nothing to diff against yet. Skip
            # cleanly (exit 0) -- committing the fresh JSON at the repo root
            # starts the trajectory.
            print(f"{name}: first run, no tracked baseline at "
                  f"{tracked_path} -- skipped (commit the fresh JSON to "
                  f"start tracking)")
            continue
        with open(tracked_path) as f:
            tracked = json.load(f)
        with open(path) as f:
            fresh = json.load(f)
        print(f"{name}:")
        failures, skipped = compare(name, tracked, fresh, args.threshold)
        if skipped is not None:
            print(f"  skipped: {skipped}")
            continue
        compared += 1
        all_failures.extend(failures)

    if all_failures:
        print(f"\nbench_compare: {len(all_failures)} gated regression(s) "
              f">{args.threshold * 100:.0f}%:", file=sys.stderr)
        for f in all_failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nbench_compare: {compared} bench(es) compared, no gated "
          f"regression >{args.threshold * 100:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
